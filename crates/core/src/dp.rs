//! The memory-constrained communication minimization algorithm (§3.3).
//!
//! Bottom-up over the expression tree: at each node, every combination of
//! * generalized-Cannon communication pattern (triplet `{i,j,k}` × role
//!   assignment, §3.1),
//! * fusion prefix with the parent,
//! * children's `(distribution, fusion)` solutions (with redistribution
//!   when an unfused child arrives in a different layout),
//!
//! is evaluated; candidates exceeding the per-processor memory limit are
//! dropped and dominated candidates pruned, exactly as the paper describes.
//! The root's cheapest surviving solution is optimal over the searched
//! space (the search is exhaustive; pruning only removes candidates that
//! cannot be extended into a better complete solution).

use std::collections::HashMap;

use tce_cost::CostModel;
use tce_dist::{dist_size, enumerate_patterns, CannonPattern, Distribution, GridDim, Operand};
use tce_expr::{ExprTree, IndexId, IndexSet, NodeId, NodeKind};
use tce_fusion::{edge_candidates, enumerate_prefixes, FusionPrefix};

use crate::solution::{ChildBinding, Choice, Solution, SolutionSet};

/// Search-space knobs.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Cap on fused loops per edge (`usize::MAX` = unlimited).
    pub max_prefix_len: usize,
    /// Also consider leaving a grid dimension undistributed (replication) —
    /// an extension beyond the paper's always-fully-distributed search.
    pub allow_replication: bool,
    /// Also consider rotating an array that does not carry every fused
    /// loop surrounding the contraction (its full block is then re-sent per
    /// iteration). The paper's `MsgFactor` formula prices only fused
    /// indices of the rotated array's own dimensions, so its search
    /// excludes these configurations; enabling this explores the larger
    /// space, which can genuinely beat the paper's optimum (see
    /// EXPERIMENTS.md, experiment X1).
    pub allow_unrelated_rotation: bool,
    /// Override the per-processor memory limit in words (`None` = take it
    /// from the machine model).
    pub mem_limit_words: Option<u128>,
    /// Disable dominance pruning (for the §3.3 pruning-effectiveness
    /// ablation; the result is unchanged, only the work done).
    pub disable_pruning: bool,
    /// Restrict the search to one fixed fusion configuration (the
    /// "fusion first" baseline).
    pub fixed_fusion: Option<tce_fusion::FusionConfig>,
    /// Restrict each node to one fixed communication pattern (the
    /// "distribution first" baseline).
    pub fixed_patterns: Option<HashMap<NodeId, CannonPattern>>,
    /// Given initial distributions of input arrays, by name (§3.3: "we
    /// assume the input arrays can be distributed initially among the
    /// processors in any way at zero cost … our approach works regardless
    /// of whether any initial or final data distribution is given").
    /// Inputs listed here start in the given layout and pay redistribution
    /// when a contraction needs another; absent inputs remain free.
    pub input_dists: HashMap<String, Distribution>,
    /// Required final distribution of the root output; the plan pays a
    /// final redistribution when the best production layout differs.
    pub output_dist: Option<Distribution>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            max_prefix_len: usize::MAX,
            allow_replication: false,
            allow_unrelated_rotation: false,
            mem_limit_words: None,
            disable_pruning: false,
            fixed_fusion: None,
            fixed_patterns: None,
            input_dists: HashMap::new(),
            output_dist: None,
        }
    }
}

/// Why optimization failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptimizeError {
    /// No fusion/distribution combination fits the memory limit.
    NoFeasibleSolution {
        /// The limit that could not be met (words per processor).
        limit_words: u128,
    },
    /// The tree contains a node the parallel model cannot place.
    Unsupported(String),
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::NoFeasibleSolution { limit_words } => write!(
                f,
                "no fusion/distribution combination fits within {limit_words} words per processor"
            ),
            OptimizeError::Unsupported(m) => write!(f, "unsupported computation: {m}"),
        }
    }
}

impl std::error::Error for OptimizeError {}

/// Per-node search statistics (for the pruning ablation, experiment S2).
///
/// A per-node view over the run's [`tce_obs::Counters`]: each field is the
/// node's contribution to the correspondingly named counter in
/// [`Optimized::counters`].
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Array name of the node.
    pub name: String,
    /// Candidates generated.
    pub candidates: u64,
    /// Candidates pruned as dominated.
    pub pruned_inferior: u64,
    /// Candidates pruned by the memory limit.
    pub pruned_memory: u64,
    /// Candidates priced with a child redistribution fallback.
    pub redist_fallbacks: u64,
    /// Live solutions kept.
    pub live: usize,
}

/// The optimization outcome: the per-node solution sets plus the winning
/// root solution.
#[derive(Debug)]
pub struct Optimized {
    /// Total communication cost (seconds).
    pub comm_cost: f64,
    /// Per-processor memory (words) of all stored arrays.
    pub mem_words: u128,
    /// Largest per-step message (words) — the staging buffer.
    pub max_msg_words: u128,
    /// Solution sets for every internal node (for plan reconstruction).
    pub sets: HashMap<NodeId, SolutionSet>,
    /// Winning solution index at the root.
    pub best_index: usize,
    /// Redistribution cost into the required final output layout (zero
    /// when none was requested or the layouts already match); included in
    /// `comm_cost`.
    pub output_redist_cost: f64,
    /// Search statistics, postorder.
    pub stats: Vec<NodeStats>,
    /// Aggregate search counters for this run (see [`tce_obs::names`]);
    /// `stats` is the per-node breakdown of the same numbers.
    pub counters: tce_obs::Counters,
}

/// Run the §3.3 dynamic programming.
pub fn optimize(
    tree: &ExprTree,
    cm: &CostModel,
    cfg: &OptimizerConfig,
) -> Result<Optimized, OptimizeError> {
    if tree.node(tree.root()).is_leaf() {
        return Err(OptimizeError::Unsupported(
            "the expression tree computes nothing (its root is an input array)".into(),
        ));
    }
    let limit = cfg.mem_limit_words.unwrap_or_else(|| cm.mem_limit_words());
    let mut sets: HashMap<NodeId, SolutionSet> = HashMap::new();
    let mut stats = Vec::new();
    let mut counters = tce_obs::Counters::new();
    let mut run_span = tce_obs::span("dp", "optimize");

    for node in tree.postorder() {
        let n = tree.node(node);
        if n.is_leaf() {
            continue; // leaves are bound inline at their parent
        }
        let mut node_span = tce_obs::span("dp", n.tensor.name.as_str());
        let my_prefixes = match &cfg.fixed_fusion {
            Some(fc) => vec![fc.prefix(node)],
            None => enumerate_prefixes(&edge_candidates(tree, node), cfg.max_prefix_len),
        };
        let mut set = SolutionSet::with_pruning(!cfg.disable_pruning);
        match &n.kind {
            NodeKind::Contract { left, right, .. } => {
                if let Ok(groups) = tree.contraction_groups(node) {
                    let patterns = match cfg.fixed_patterns.as_ref().and_then(|m| m.get(&node)) {
                        Some(p) => vec![*p],
                        None => enumerate_patterns(&groups, cfg.allow_replication),
                    };
                    combine_contraction(
                        tree,
                        cm,
                        cfg,
                        node,
                        *left,
                        *right,
                        &patterns,
                        &my_prefixes,
                        &sets,
                        limit,
                        &mut set,
                    );
                } else {
                    // Element-wise multiplication (shared non-summed
                    // indices, e.g. Fig. 1's T3 = T1 × T2): aligned
                    // distributions, no rotation.
                    combine_elementwise(
                        tree,
                        cm,
                        cfg,
                        node,
                        *left,
                        *right,
                        &my_prefixes,
                        &sets,
                        limit,
                        &mut set,
                    );
                }
            }
            NodeKind::Reduce { sum, child } => {
                combine_reduce(
                    tree,
                    cm,
                    cfg,
                    node,
                    *child,
                    *sum,
                    &my_prefixes,
                    &sets,
                    limit,
                    &mut set,
                );
            }
            NodeKind::Leaf => unreachable!(),
        }
        counters.add(tce_obs::names::NODES, 1);
        counters.add(tce_obs::names::CANDIDATES, set.candidates_seen);
        counters.add(tce_obs::names::PRUNED_INFERIOR, set.pruned_inferior);
        counters.add(tce_obs::names::PRUNED_MEMORY, set.pruned_memory);
        counters.add(tce_obs::names::REDIST_FALLBACKS, set.redist_fallbacks);
        counters.add(tce_obs::names::FRONTIER, set.total_live());
        node_span.arg("candidates", set.candidates_seen);
        node_span.arg("pruned_inferior", set.pruned_inferior);
        node_span.arg("pruned_memory", set.pruned_memory);
        node_span.arg("live", set.live_len());
        drop(node_span);
        // Sample the cumulative counters so the trace shows them growing
        // node by node.
        counters.sample_all();
        stats.push(NodeStats {
            name: n.tensor.name.clone(),
            candidates: set.candidates_seen,
            pruned_inferior: set.pruned_inferior,
            pruned_memory: set.pruned_memory,
            redist_fallbacks: set.redist_fallbacks,
            live: set.live_len(),
        });
        sets.insert(node, set);
    }

    let root_set = &sets[&tree.root()];
    let root_tensor = &tree.node(tree.root()).tensor;
    // A required final layout charges each candidate the redistribution
    // from its production layout (§3.3: "we do not require the final
    // results to be distributed in any particular way" — unless asked).
    let final_redist = |dist: Distribution| -> f64 {
        match cfg.output_dist {
            None => 0.0,
            Some(target) => {
                cm.redistribution_cost(root_tensor, &tree.space, dist, target, &IndexSet::new())
            }
        }
    };
    let best_index = root_set
        .all
        .iter()
        .enumerate()
        .filter(|(_, s)| s.fusion.is_empty() && s.footprint_words() <= limit)
        .min_by(|(_, a), (_, b)| {
            (a.comm_cost + final_redist(a.dist)).total_cmp(&(b.comm_cost + final_redist(b.dist)))
        })
        .map(|(i, _)| i)
        .ok_or(OptimizeError::NoFeasibleSolution { limit_words: limit })?;
    let best = &root_set.all[best_index];
    let output_redist_cost = final_redist(best.dist);
    run_span.arg("nodes", counters.get(tce_obs::names::NODES));
    run_span.arg("candidates", counters.get(tce_obs::names::CANDIDATES));
    run_span.arg("comm_cost", best.comm_cost + output_redist_cost);
    drop(run_span);
    Ok(Optimized {
        comm_cost: best.comm_cost + output_redist_cost,
        mem_words: best.mem_words,
        max_msg_words: best.max_msg_words,
        best_index,
        output_redist_cost,
        stats,
        counters,
        sets,
    })
}

/// A way to obtain one child array in a required layout.
struct ChildOpt {
    sol_index: usize,
    produced: Distribution,
    comm_cost: f64,
    mem_words: u128,
    max_msg_words: u128,
    redist_cost: f64,
}

/// Enumerate the ways child `c` can supply its array in `required` layout
/// with fusion `f` on the edge.
fn child_options(
    tree: &ExprTree,
    cm: &CostModel,
    cfg: &OptimizerConfig,
    c: NodeId,
    f: &FusionPrefix,
    required: Distribution,
    sets: &HashMap<NodeId, SolutionSet>,
) -> Vec<ChildOpt> {
    let n = tree.node(c);
    if n.is_leaf() {
        // Inputs may be distributed initially in any way at zero cost
        // (§3.3) — unless a starting layout was given, in which case the
        // array pays redistribution into the required one. Inputs are
        // stored in full regardless of edge fusion.
        if !required.is_valid_for(&n.tensor) {
            return vec![];
        }
        let mem = dist_size(&n.tensor, &tree.space, cm.grid, required, &IndexSet::new());
        let (produced, redist) = match cfg.input_dists.get(&n.tensor.name) {
            Some(&given) if given.is_valid_for(&n.tensor) => {
                // A fused edge cannot redistribute mid-stream; the given
                // layout must already match.
                if !f.is_empty() && given != required {
                    return vec![];
                }
                let cost = cm.redistribution_cost(
                    &n.tensor,
                    &tree.space,
                    given,
                    required,
                    &IndexSet::new(),
                );
                (given, cost)
            }
            _ => (required, 0.0),
        };
        return vec![ChildOpt {
            sol_index: usize::MAX,
            produced,
            comm_cost: 0.0,
            mem_words: mem,
            max_msg_words: 0,
            redist_cost: redist,
        }];
    }
    let set = &sets[&c];
    if f.is_empty() {
        // Unfused: the array is fully materialized; any production layout
        // works, paying redistribution when it differs.
        set.with_fusion(f)
            .into_iter()
            .map(|i| {
                let s = &set.all[i];
                let redist = cm.redistribution_cost(
                    &n.tensor,
                    &tree.space,
                    s.dist,
                    required,
                    &IndexSet::new(),
                );
                ChildOpt {
                    sol_index: i,
                    produced: s.dist,
                    comm_cost: s.comm_cost,
                    mem_words: s.mem_words,
                    max_msg_words: s.max_msg_words,
                    redist_cost: redist,
                }
            })
            .collect()
    } else {
        // Fused: produced slice-by-slice inside shared loops — no chance to
        // redistribute, so the production layout must match exactly. This
        // also enforces §3.2(iii): every fused index is distributed
        // identically (or not at all) at both ends.
        set.lookup(required, f)
            .into_iter()
            .map(|i| {
                let s = &set.all[i];
                ChildOpt {
                    sol_index: i,
                    produced: s.dist,
                    comm_cost: s.comm_cost,
                    mem_words: s.mem_words,
                    max_msg_words: s.max_msg_words,
                    redist_cost: 0.0,
                }
            })
            .collect()
    }
}

/// Fusion prefixes available on the edge above child `c`.
fn child_fusions(
    tree: &ExprTree,
    cfg: &OptimizerConfig,
    c: NodeId,
    sets: &HashMap<NodeId, SolutionSet>,
) -> Vec<FusionPrefix> {
    if tree.node(c).is_leaf() {
        match &cfg.fixed_fusion {
            // Fixed configurations pin the internal edges but leave leaf
            // message slicing free (it has no memory side).
            Some(_) => enumerate_prefixes(&edge_candidates(tree, c), cfg.max_prefix_len),
            None => enumerate_prefixes(&edge_candidates(tree, c), cfg.max_prefix_len),
        }
    } else {
        sets[&c].fusions()
    }
}

#[allow(clippy::too_many_arguments)]
fn combine_contraction(
    tree: &ExprTree,
    cm: &CostModel,
    cfg: &OptimizerConfig,
    node: NodeId,
    left: NodeId,
    right: NodeId,
    patterns: &[CannonPattern],
    my_prefixes: &[FusionPrefix],
    sets: &HashMap<NodeId, SolutionSet>,
    limit: u128,
    out: &mut SolutionSet,
) {
    let space = &tree.space;
    let lf_all = child_fusions(tree, cfg, left, sets);
    let rf_all = child_fusions(tree, cfg, right, sets);

    // Pre-filter chain-compatible (f_left, f_right, f_up) triples.
    let mut triples: Vec<(&FusionPrefix, &FusionPrefix, &FusionPrefix)> = Vec::new();
    for fl in &lf_all {
        for fr in &rf_all {
            if !fl.chain_compatible(fr) {
                continue;
            }
            for fu in my_prefixes {
                if fu.chain_compatible(fl) && fu.chain_compatible(fr) {
                    triples.push((fl, fr, fu));
                }
            }
        }
    }

    let result_tensor = &tree.node(node).tensor;
    let left_tensor = &tree.node(left).tensor;
    let right_tensor = &tree.node(right).tensor;

    for pat in patterns {
        let ldist = pat.operand_dist(Operand::Left);
        let rdist = pat.operand_dist(Operand::Right);
        let odist = pat.operand_dist(Operand::Result);
        let rot_index = pat.rotation_index();

        for &(fl, fr, fu) in &triples {
            // The fused loops surrounding this contraction.
            let surrounding = fl.join(fr).join(fu).clone();
            // The rotation step loop cannot be fused around the contraction.
            if let Some(k) = rot_index {
                if surrounding.contains(k) {
                    continue;
                }
            }
            let surround_set = surrounding.as_set();
            // Per-processor trip count of a surrounding loop: reduced when
            // the pattern distributes that index.
            let trip = |j: IndexId| -> u64 {
                let dim = odist
                    .position_of(j)
                    .or_else(|| ldist.position_of(j))
                    .or_else(|| rdist.position_of(j));
                match dim {
                    Some(d) => tce_dist::block_len(space.extent(j), cm.grid.extent(d)),
                    None => space.extent(j),
                }
            };

            // Paper-faithful restriction: every rotated array must carry
            // all surrounding fused loops (the `MsgFactor` formula's
            // domain). `allow_unrelated_rotation` lifts it.
            if !cfg.allow_unrelated_rotation
                && pat.rotated_operands().iter().any(|&op| {
                    let dims = match op {
                        Operand::Left => left_tensor.dim_set(),
                        Operand::Right => right_tensor.dim_set(),
                        Operand::Result => result_tensor.dim_set(),
                    };
                    !surround_set.is_subset(&dims)
                })
            {
                continue;
            }

            // Rotation costs and message sizes at this contraction.
            let mut rotate = [0.0f64; 3]; // left, right, result
            let mut msg = [0u128; 3];
            for (slot, op, tensor, dist) in [
                (0usize, Operand::Left, left_tensor, ldist),
                (1, Operand::Right, right_tensor, rdist),
                (2, Operand::Result, result_tensor, odist),
            ] {
                if let Some(travel) = pat.travel_dim(op) {
                    rotate[slot] =
                        cm.rotate_cost_surrounded(tensor, space, dist, travel, &surround_set, trip);
                    msg[slot] = tce_cost::rotate::message_words(
                        tensor,
                        space,
                        cm.grid,
                        dist,
                        &surround_set,
                    );
                }
            }

            let my_mem = dist_size(result_tensor, space, cm.grid, odist, &fu.as_set());

            for lopt in child_options(tree, cm, cfg, left, fl, ldist, sets) {
                for ropt in child_options(tree, cm, cfg, right, fr, rdist, sets) {
                    let comm_cost = lopt.comm_cost
                        + ropt.comm_cost
                        + lopt.redist_cost
                        + ropt.redist_cost
                        + rotate[0]
                        + rotate[1]
                        + rotate[2];
                    let mem_words = lopt.mem_words + ropt.mem_words + my_mem;
                    let max_msg_words = lopt
                        .max_msg_words
                        .max(ropt.max_msg_words)
                        .max(msg[0])
                        .max(msg[1])
                        .max(msg[2]);
                    let choice = Choice {
                        pattern: Some(*pat),
                        children: vec![
                            ChildBinding {
                                node: left,
                                sol_index: lopt.sol_index,
                                produced_dist: lopt.produced,
                                required_dist: ldist,
                                fusion: fl.clone(),
                                redist_cost: lopt.redist_cost,
                                rotate_cost: rotate[0],
                            },
                            ChildBinding {
                                node: right,
                                sol_index: ropt.sol_index,
                                produced_dist: ropt.produced,
                                required_dist: rdist,
                                fusion: fr.clone(),
                                redist_cost: ropt.redist_cost,
                                rotate_cost: rotate[1],
                            },
                        ],
                        result_rotate_cost: rotate[2],
                        surrounding: surrounding.clone(),
                    };
                    out.insert(
                        Solution {
                            dist: odist,
                            fusion: fu.clone(),
                            comm_cost,
                            mem_words,
                            max_msg_words,
                            choice: Some(Box::new(choice)),
                        },
                        limit,
                    );
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn combine_elementwise(
    tree: &ExprTree,
    cm: &CostModel,
    cfg: &OptimizerConfig,
    node: NodeId,
    left: NodeId,
    right: NodeId,
    my_prefixes: &[FusionPrefix],
    sets: &HashMap<NodeId, SolutionSet>,
    limit: u128,
    out: &mut SolutionSet,
) {
    let space = &tree.space;
    let result_tensor = &tree.node(node).tensor;
    let dims = result_tensor.dim_set();
    let dists = Distribution::enumerate(&dims, cfg.allow_replication || dims.len() < 2);
    let lf_all = child_fusions(tree, cfg, left, sets);
    let rf_all = child_fusions(tree, cfg, right, sets);

    // Restriction of the result distribution to a child's dimensions.
    let restrict = |d: Distribution, t: &tce_expr::Tensor| Distribution {
        d1: d.d1.filter(|&i| t.has_dim(i)),
        d2: d.d2.filter(|&i| t.has_dim(i)),
    };

    for &odist in &dists {
        let ldist = restrict(odist, &tree.node(left).tensor);
        let rdist = restrict(odist, &tree.node(right).tensor);
        for fl in &lf_all {
            for fr in &rf_all {
                if !fl.chain_compatible(fr) {
                    continue;
                }
                for fu in my_prefixes {
                    if !fu.chain_compatible(fl) || !fu.chain_compatible(fr) {
                        continue;
                    }
                    let surrounding = fl.join(fr).join(fu).clone();
                    let my_mem = dist_size(result_tensor, space, cm.grid, odist, &fu.as_set());
                    for lopt in child_options(tree, cm, cfg, left, fl, ldist, sets) {
                        for ropt in child_options(tree, cm, cfg, right, fr, rdist, sets) {
                            let comm_cost = lopt.comm_cost
                                + ropt.comm_cost
                                + lopt.redist_cost
                                + ropt.redist_cost;
                            let choice = Choice {
                                pattern: None,
                                children: vec![
                                    ChildBinding {
                                        node: left,
                                        sol_index: lopt.sol_index,
                                        produced_dist: lopt.produced,
                                        required_dist: ldist,
                                        fusion: fl.clone(),
                                        redist_cost: lopt.redist_cost,
                                        rotate_cost: 0.0,
                                    },
                                    ChildBinding {
                                        node: right,
                                        sol_index: ropt.sol_index,
                                        produced_dist: ropt.produced,
                                        required_dist: rdist,
                                        fusion: fr.clone(),
                                        redist_cost: ropt.redist_cost,
                                        rotate_cost: 0.0,
                                    },
                                ],
                                result_rotate_cost: 0.0,
                                surrounding: surrounding.clone(),
                            };
                            out.insert(
                                Solution {
                                    dist: odist,
                                    fusion: fu.clone(),
                                    comm_cost,
                                    mem_words: lopt.mem_words + ropt.mem_words + my_mem,
                                    max_msg_words: lopt.max_msg_words.max(ropt.max_msg_words),
                                    choice: Some(Box::new(choice)),
                                },
                                limit,
                            );
                        }
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn combine_reduce(
    tree: &ExprTree,
    cm: &CostModel,
    cfg: &OptimizerConfig,
    node: NodeId,
    child: NodeId,
    sum: IndexId,
    my_prefixes: &[FusionPrefix],
    sets: &HashMap<NodeId, SolutionSet>,
    limit: u128,
    out: &mut SolutionSet,
) {
    let space = &tree.space;
    let result_tensor = &tree.node(node).tensor;
    let child_tensor = &tree.node(child).tensor;
    let cf_all = child_fusions(tree, cfg, child, sets);
    // Candidate child distributions: everything valid for the child array.
    let cdists = Distribution::enumerate(
        &child_tensor.dim_set(),
        cfg.allow_replication || child_tensor.arity() < 2,
    );

    for &cdist in &cdists {
        // The summed dimension disappears; if it was distributed along d,
        // a reduction across grid dimension d combines the partial sums and
        // the result is no longer distributed along d.
        let (odist, reduce_dim) = match cdist.position_of(sum) {
            Some(GridDim::Dim1) => (Distribution { d1: None, d2: cdist.d2 }, Some(GridDim::Dim1)),
            Some(GridDim::Dim2) => (Distribution { d1: cdist.d1, d2: None }, Some(GridDim::Dim2)),
            None => (cdist, None),
        };
        for fc in &cf_all {
            if fc.contains(sum) {
                continue; // the summed loop belongs to this node, not the edge
            }
            for fu in my_prefixes {
                if !fu.chain_compatible(fc) {
                    continue;
                }
                let surrounding = fc.join(fu).clone();
                let my_mem = dist_size(result_tensor, space, cm.grid, odist, &fu.as_set());
                // Reduction cost: a ring combine of the (sliced) result
                // block across the reduce dimension, repeated per fused
                // surrounding iteration.
                let reduce_cost = match reduce_dim {
                    None => 0.0,
                    Some(d) => {
                        let sliced = surrounding.as_set().intersection(&result_tensor.dim_set());
                        let words = dist_size(result_tensor, space, cm.grid, odist, &sliced);
                        let factor: u128 = surrounding
                            .iter()
                            .map(|j| {
                                odist
                                    .position_of(j)
                                    .map(|dd| {
                                        tce_dist::block_len(space.extent(j), cm.grid.extent(dd))
                                    })
                                    .unwrap_or_else(|| space.extent(j))
                                    as u128
                            })
                            .product();
                        factor as f64
                            * cm.chr.rcost(
                                cm.grid.extent(d),
                                d,
                                (words * tce_cost::units::WORD_BYTES) as f64,
                            )
                    }
                };
                for copt in child_options(tree, cm, cfg, child, fc, cdist, sets) {
                    let choice = Choice {
                        pattern: None,
                        children: vec![ChildBinding {
                            node: child,
                            sol_index: copt.sol_index,
                            produced_dist: copt.produced,
                            required_dist: cdist,
                            fusion: fc.clone(),
                            redist_cost: copt.redist_cost,
                            rotate_cost: 0.0,
                        }],
                        result_rotate_cost: reduce_cost,
                        surrounding: surrounding.clone(),
                    };
                    out.insert(
                        Solution {
                            dist: odist,
                            fusion: fu.clone(),
                            comm_cost: copt.comm_cost + copt.redist_cost + reduce_cost,
                            mem_words: copt.mem_words + my_mem,
                            max_msg_words: copt.max_msg_words,
                            choice: Some(Box::new(choice)),
                        },
                        limit,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_cost::{CostModel, MachineModel};
    use tce_expr::parse;

    fn cm4() -> CostModel {
        CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap()
    }

    /// A reduce node with its summed index distributed pays a reduction
    /// and drops the index from the distribution.
    #[test]
    fn reduce_with_distributed_sum_is_priced() {
        let src = "range i = 8; range t = 8;\ninput A[i,t];\nS[t] = sum[i] A[i,t];\n";
        let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let opt = optimize(&tree, &cm4(), &OptimizerConfig::default()).unwrap();
        // A 2-dim input is always fully distributed (paper style), so `i`
        // is distributed in every option and the reduction must be priced.
        assert!(opt.comm_cost > 0.0);
        // No solution may keep the summed index in its distribution, and
        // the freed grid dimension is left unoccupied (S is 1-dim).
        let i = tree.space.lookup("i").unwrap();
        let set = &opt.sets[&tree.root()];
        assert!(!set.all.is_empty());
        for s in &set.all {
            assert!(!s.dist.contains(i));
            assert!(s.dist.d1.is_none() || s.dist.d2.is_none());
        }
    }

    /// The element-wise path prices redistribution of misaligned children.
    #[test]
    fn elementwise_requires_alignment() {
        let src = "\
range i = 8; range j = 8; range k = 8; range t = 8;
input A[i,j,t]; input B[j,k,t];
T1[j,t] = sum[i] A[i,j,t];
T2[j,t] = sum[k] B[j,k,t];
T3[j,t] = T1[j,t] * T2[j,t];
S[t] = sum[j] T3[j,t];
";
        let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let opt = optimize(&tree, &cm4(), &OptimizerConfig::default()).unwrap();
        let plan = crate::plan::extract_plan(&tree, &opt);
        let t3 = plan.step_for("T3").unwrap();
        // Element-wise steps have no Cannon pattern and no rotations.
        assert!(t3.pattern.is_none());
        for op in &t3.operands {
            assert_eq!(op.rotate_cost, 0.0);
        }
    }

    /// Fixed-pattern restriction is honored verbatim.
    #[test]
    fn fixed_patterns_are_verbatim() {
        use tce_dist::enumerate_patterns;
        let src = "range i = 8; range j = 8; range k = 8;\ninput A[i,k]; input B[k,j];\nC[i,j] = sum[k] A[i,k]*B[k,j];\n";
        let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let node = tree.root();
        let pat = enumerate_patterns(&tree.contraction_groups(node).unwrap(), false)[3];
        let mut fixed = HashMap::new();
        fixed.insert(node, pat);
        let cfg = OptimizerConfig { fixed_patterns: Some(fixed), ..Default::default() };
        let opt = optimize(&tree, &cm4(), &cfg).unwrap();
        let plan = crate::plan::extract_plan(&tree, &opt);
        assert_eq!(plan.steps[0].pattern.unwrap(), pat);
    }
}
