//! # tce-core — memory-constrained communication minimization
//!
//! The paper's contribution (§3.3): a bottom-up dynamic programming over a
//! tensor contraction expression tree that **jointly** chooses, per node,
//!
//! * the generalized-Cannon communication pattern (and thus the
//!   distributions of all three participating arrays), and
//! * the loop fusion with the parent (and thus the reduced array shape and
//!   the message slicing/multiplication of every rotation),
//!
//! minimizing total inter-processor communication subject to a
//! per-processor memory limit. Partial solutions are pruned when dominated
//! or memory-infeasible; the search is otherwise exhaustive, so the result
//! is optimal over the modeled space (validated against
//! [`exhaustive`] brute force on small instances).
//!
//! ```
//! use tce_core::{optimize, OptimizerConfig};
//! use tce_cost::{CostModel, MachineModel};
//! use tce_expr::examples::{ccsd_tree, PAPER_EXTENTS};
//!
//! let tree = ccsd_tree(PAPER_EXTENTS);
//! let cm = CostModel::for_square(MachineModel::itanium_cluster(), 64).unwrap();
//! let opt = optimize(&tree, &cm, &OptimizerConfig::default()).unwrap();
//! let plan = tce_core::extract_plan(&tree, &opt);
//! println!("{}", tce_core::render_report(&tce_core::build_report(&tree, &plan, &cm)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::panic))]

pub mod baselines;
pub mod cache;
mod codegen;
mod dp;
pub mod exhaustive;
mod explain;
mod frontier;
mod hook;
mod plan;
pub mod portfolio;
mod provenance;
mod report;
mod sched;
mod solution;
mod stats;

pub use cache::{cache_key, CacheKey, CachedRun, LookupOutcome, PlanCache, PLAN_CACHE_SCHEMA};
pub use codegen::render_spmd;
pub use dp::{optimize, NodeStats, OptimizeError, Optimized, OptimizerConfig, Planner};
pub use explain::{explain, Explanation};
pub use frontier::{frontier_plan, root_frontier, FrontierPoint};
pub use hook::{install_plan_checker, plan_checker, PlanChecker};
pub use plan::{
    extract_plan, extract_plan_for, validate_plan, validate_plan_basic, ExecutionPlan, PlanOperand,
    PlanStep,
};
pub use provenance::{
    build_provenance, render_provenance, report_json, KindProfile, NodeProvenance, Provenance,
    RunnerUp, KIND_NAMES,
};
pub use report::{build_report, render_plan_dot, render_report, ArrayRow, Report};
pub use solution::{ChildBinding, Choice, KeySummary, Solution, SolutionSet};
pub use stats::render_search_stats;
