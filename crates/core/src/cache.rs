//! Level-2 persistent plan cache (`tce-plan-cache/v1`).
//!
//! Memoizes full optimization outcomes — the [`ExecutionPlan`], its cost
//! scalars, the certified communication floor, and the run's
//! deterministic counter/statistics bag — on disk, keyed by everything
//! that can influence the result:
//!
//! * the **canonical expression hash** (`tce_expr::canonical_form`):
//!   commutative + index-rename normal form, so `sum[b] A[a,b]*B[b,c]`
//!   and `sum[q] B2[q,r]*A2[p,q]` share an entry;
//! * the **processor count and memory limit**;
//! * the **cost-model digest** ([`tce_cost::CostModel::digest`]), which
//!   folds in the machine parameters and the full `RCost`
//!   characterization tables, so a plan memoized for one machine profile
//!   can never be served for another;
//! * a **configuration digest** over every `OptimizerConfig` knob that
//!   can change the winning plan (search-space switches, planner, seeds,
//!   pins and output layout in canonical numbering);
//! * the **planner** and the **code version**.
//!
//! ## Trust model: validate on load, never on faith
//!
//! A cache entry is *advice*, not truth. On every hit the stored plan is
//! rename-mapped onto the live tree through the canonical-form bijection
//! and re-validated by the registered plan checker (the full `tce-check`
//! pass registry with the live cost model and memory limit — which
//! recomputes every redistribution/rotation cost bit-exactly and re-adds
//! the ledger). Any mismatch — parse failure, stale schema or code
//! version, foreign characterization digest, or a plan that no longer
//! checks — **evicts the entry with a reason-specific counter and falls
//! back to a fresh search**. Corruption can cost time, never
//! correctness, and never silently.
//!
//! ## Layout
//!
//! One JSON file per entry, named by the hex key digest, in a flat
//! directory (default `~/.cache/tce`, overridable with `--plan-cache`).
//! `stats.json` holds the persistent hit/miss/eviction totals shown by
//! `tce cache stats`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use tce_cost::CostModel;
use tce_dist::Distribution;
use tce_expr::{canonical_form, CanonicalForm, ExprTree, Fnv128, IndexId, NodeId};
use tce_fusion::FusionPrefix;

use crate::dp::{NodeStats, Optimized, OptimizerConfig};
use crate::plan::{validate_plan_basic, ExecutionPlan, PlanOperand, PlanStep};

/// Schema stamp written into every entry; bump on any incompatible
/// change to the entry layout.
pub const PLAN_CACHE_SCHEMA: &str = "tce-plan-cache/v1";

/// Code version stamp: entries written by another build are evicted
/// (`cache.evict_version`) rather than trusted across releases.
const CODE_VERSION: &str = env!("CARGO_PKG_VERSION");

fn hex128(v: u128) -> String {
    format!("{v:032x}")
}

/// The fully resolved cache key for one optimization request, plus the
/// canonical form used to translate plans between the entry's canonical
/// ids and the live tree.
pub struct CacheKey {
    /// Canonical (commutative, rename-invariant) expression hash.
    pub expr_hash: u128,
    /// Processor count of the target grid.
    pub procs: u32,
    /// Resolved per-processor memory limit (words).
    pub mem_limit_words: u128,
    /// [`CostModel::digest`] — machine + characterization + grid.
    pub cost_digest: u128,
    /// Digest over every result-relevant [`OptimizerConfig`] knob.
    pub cfg_digest: u128,
    /// Planner name (also part of the file digest).
    pub planner: &'static str,
    form: CanonicalForm,
}

impl CacheKey {
    /// The entry file name: hex digest over every key component.
    pub fn file_name(&self) -> String {
        let mut h = Fnv128::new();
        h.write_u128(self.expr_hash);
        h.write_u32(self.procs);
        h.write_u128(self.mem_limit_words);
        h.write_u128(self.cost_digest);
        h.write_u128(self.cfg_digest);
        h.write_str(self.planner);
        format!("{}.json", hex128(h.finish()))
    }
}

/// Compute the cache key for `(tree, cm, cfg)`, or `None` when the
/// request is not cacheable: pinned fusion/pattern baselines key by raw
/// node ids (not subtree structure), and a pin or output index that does
/// not map into the canonical numbering would make the key ambiguous.
pub fn cache_key(tree: &ExprTree, cm: &CostModel, cfg: &OptimizerConfig) -> Option<CacheKey> {
    if cfg.fixed_fusion.is_some() || cfg.fixed_patterns.is_some() {
        return None;
    }
    let form = canonical_form(tree);
    let number: HashMap<IndexId, u32> =
        form.index_order.iter().enumerate().map(|(n, &ix)| (ix, n as u32)).collect();
    let mut h = Fnv128::new();
    h.write_u64(cfg.max_prefix_len as u64);
    let mut flags = 0u64;
    for (bit, on) in [
        cfg.allow_replication,
        cfg.allow_unrelated_rotation,
        cfg.disable_pruning,
        cfg.disable_lower_bounds,
        cfg.legacy_frontier,
    ]
    .into_iter()
    .enumerate()
    {
        if on {
            flags |= 1 << bit;
        }
    }
    h.write_u64(flags);
    h.write_str(cfg.planner.name());
    match cfg.time_budget_ms {
        None => h.write(&[0]),
        Some(ms) => {
            h.write(&[1]);
            h.write_u64(ms);
        }
    }
    h.write_u64(cfg.anneal_seed);
    h.write_u64(cfg.gap_epsilon.to_bits());
    match cfg.warm_upper_bound {
        None => h.write(&[0]),
        Some(ub) => {
            h.write(&[1]);
            h.write_u64(ub.to_bits());
        }
    }
    // Canonical output-layout signature.
    fn dist_sig(h: &mut Fnv128, d: Distribution, number: &HashMap<IndexId, u32>) -> Option<()> {
        for half in [d.d1, d.d2] {
            match half {
                None => h.write(&[0]),
                Some(ix) => {
                    h.write(&[1]);
                    h.write_u32(*number.get(&ix)?);
                }
            }
        }
        Some(())
    }
    match cfg.output_dist {
        None => h.write(&[0]),
        Some(d) => {
            h.write(&[1]);
            dist_sig(&mut h, d, &number)?;
        }
    }
    // Canonical pin signature: one slot per leaf in canonical node order.
    for &node in &form.node_order {
        let n = tree.node(node);
        if !n.is_leaf() {
            continue;
        }
        match cfg.input_dists.get(&n.tensor.name) {
            None => h.write(&[0]),
            Some(&d) => {
                h.write(&[2]);
                dist_sig(&mut h, d, &number)?;
            }
        }
    }
    Some(CacheKey {
        expr_hash: form.hash,
        procs: cm.grid.num_procs(),
        mem_limit_words: cfg.mem_limit_words.unwrap_or_else(|| cm.mem_limit_words()),
        cost_digest: cm.digest(),
        cfg_digest: h.finish(),
        planner: cfg.planner.name(),
        form,
    })
}

/// One stored per-node statistics row, keyed by canonical node position
/// (the live tree's postorder may visit commuted operands in a different
/// order than the tree the entry was stored from).
#[derive(Serialize, Deserialize)]
struct StoredNodeStats {
    position: u32,
    candidates: u64,
    pruned_inferior: u64,
    pruned_memory: u64,
    redist_fallbacks: u64,
    live: u64,
    keys: u64,
    widest_front: u64,
    arena_hw_bytes: u64,
    floor_exact: bool,
}

#[derive(Serialize, Deserialize)]
struct CounterRow {
    name: String,
    value: u64,
}

/// The on-disk entry. The plan (and statistics) are stored in canonical
/// ids — node ids are canonical positions, index ids canonical numbers,
/// array names the placeholder `n<position>` — so one entry serves every
/// isomorphic rendering of the expression.
#[derive(Serialize, Deserialize)]
struct Entry {
    schema: String,
    code_version: String,
    expr_hash: String,
    procs: u32,
    mem_limit_words: u128,
    cost_digest: String,
    cfg_digest: String,
    planner: String,
    /// The canonical expression rendered back to `.tce` source
    /// (placeholder names), so `tce cache verify` can rebuild the tree
    /// and run the full plan checker without the original workload file.
    workload: String,
    plan: ExecutionPlan,
    comm_cost: f64,
    mem_words: u128,
    max_msg_words: u128,
    output_redist_cost: f64,
    comm_lower_bound: f64,
    comm_floor_exact: bool,
    arena_hw_bytes: u64,
    counters: Vec<CounterRow>,
    stats: Vec<StoredNodeStats>,
}

/// A successful cache hit: the plan rename-mapped onto the live tree and
/// a synthetic [`Optimized`] carrying the stored scalars, counters, and
/// per-node statistics verbatim.
///
/// `opt.sets` is empty — a cached run has no solution frontiers, so
/// callers must not feed it to `extract_plan` / `explain` /
/// `root_frontier` (the plan is already here).
pub struct CachedRun {
    /// The re-validated plan in live-tree ids and names.
    pub plan: ExecutionPlan,
    /// Synthetic optimization outcome (empty `sets`).
    pub opt: Optimized,
}

/// What a lookup did, for observability: `cache.hit`, `cache.miss`, and
/// (on an eviction) the reason counter that preceded the miss.
pub struct LookupOutcome {
    /// The hit, if the entry survived validation.
    pub run: Option<Box<CachedRun>>,
    /// `tce_obs::names::CACHE_EVICT_*` when an entry was deleted.
    pub evicted: Option<&'static str>,
}

/// Persistent totals kept in `stats.json` (process counters reset every
/// run; `tce cache stats` wants history).
#[derive(Default, Serialize, Deserialize)]
struct StatsFile {
    schema: String,
    hit: u64,
    miss: u64,
    store: u64,
    evict_corrupt: u64,
    evict_version: u64,
    evict_digest: u64,
    evict_plan: u64,
}

/// Aggregate cache state for `tce cache stats`.
pub struct CacheStats {
    /// Entry files present.
    pub entries: u64,
    /// Total bytes of entry files.
    pub bytes: u64,
    /// Persistent `(counter name, total)` pairs, fixed order.
    pub counters: Vec<(&'static str, u64)>,
}

/// Per-entry outcome of `tce cache verify`.
pub struct VerifyOutcome {
    /// Entry file name.
    pub file: String,
    /// `Ok` description or the failure reason.
    pub result: Result<String, String>,
}

/// Handle to one on-disk cache directory.
pub struct PlanCache {
    dir: PathBuf,
}

impl PlanCache {
    /// Open (without creating) the cache at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The platform default directory: `$XDG_CACHE_HOME/tce`, else
    /// `$HOME/.cache/tce`, else `None` (cache disabled).
    pub fn default_location() -> Option<PathBuf> {
        if let Some(x) = std::env::var_os("XDG_CACHE_HOME") {
            if !x.is_empty() {
                return Some(PathBuf::from(x).join("tce"));
            }
        }
        let home = std::env::var_os("HOME")?;
        if home.is_empty() {
            return None;
        }
        Some(PathBuf::from(home).join(".cache").join("tce"))
    }

    /// The directory this handle points at.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    fn bump(&self, field: &'static str) {
        let path = self.dir.join("stats.json");
        let mut st: StatsFile = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_default();
        st.schema = PLAN_CACHE_SCHEMA.to_string();
        match field {
            "hit" => st.hit += 1,
            "miss" => st.miss += 1,
            "store" => st.store += 1,
            "evict_corrupt" => st.evict_corrupt += 1,
            "evict_version" => st.evict_version += 1,
            "evict_digest" => st.evict_digest += 1,
            _ => st.evict_plan += 1,
        }
        if std::fs::create_dir_all(&self.dir).is_ok() {
            if let Ok(json) = serde_json::to_string_pretty(&st) {
                let _ = atomic_write(&path, &json);
            }
        }
    }

    /// Look the key up, validating any entry found. Evictions delete the
    /// file, record the reason, and report a miss — corruption costs
    /// time, never a wrong plan and never silence.
    pub fn lookup(&self, tree: &ExprTree, cm: &CostModel, key: &CacheKey) -> LookupOutcome {
        let path = self.entry_path(key);
        let Ok(text) = std::fs::read_to_string(&path) else {
            self.bump("miss");
            return LookupOutcome { run: None, evicted: None };
        };
        let evict = |reason: &'static str, field: &'static str| {
            let _ = std::fs::remove_file(&path);
            self.bump(field);
            self.bump("miss");
            LookupOutcome { run: None, evicted: Some(reason) }
        };
        let entry: Entry = match serde_json::from_str(&text) {
            Ok(e) => e,
            Err(_) => return evict(tce_obs::names::CACHE_EVICT_CORRUPT, "evict_corrupt"),
        };
        if entry.schema != PLAN_CACHE_SCHEMA || entry.code_version != CODE_VERSION {
            return evict(tce_obs::names::CACHE_EVICT_VERSION, "evict_version");
        }
        if entry.cost_digest != hex128(key.cost_digest) {
            return evict(tce_obs::names::CACHE_EVICT_DIGEST, "evict_digest");
        }
        if entry.expr_hash != hex128(key.expr_hash)
            || entry.procs != key.procs
            || entry.mem_limit_words != key.mem_limit_words
            || entry.cfg_digest != hex128(key.cfg_digest)
            || entry.planner != key.planner
        {
            return evict(tce_obs::names::CACHE_EVICT_CORRUPT, "evict_corrupt");
        }
        let Some(run) = instantiate(tree, cm, key, &entry) else {
            return evict(tce_obs::names::CACHE_EVICT_PLAN, "evict_plan");
        };
        self.bump("hit");
        LookupOutcome { run: Some(Box::new(run)), evicted: None }
    }

    /// Persist a fresh outcome under `key` (atomic write).
    pub fn store(
        &self,
        tree: &ExprTree,
        key: &CacheKey,
        plan: &ExecutionPlan,
        opt: &Optimized,
    ) -> Result<(), String> {
        let position: HashMap<NodeId, u32> =
            key.form.node_order.iter().enumerate().map(|(p, &n)| (n, p as u32)).collect();
        let number: HashMap<IndexId, u32> =
            key.form.index_order.iter().enumerate().map(|(n, &ix)| (ix, n as u32)).collect();
        let canon_plan = plan_to_canonical(plan, &position, &number)
            .ok_or_else(|| "plan does not map onto the canonical form".to_string())?;
        let mut stats = Vec::with_capacity(opt.stats.len());
        let internal: Vec<NodeId> =
            tree.postorder().into_iter().filter(|&n| !tree.node(n).is_leaf()).collect();
        if internal.len() != opt.stats.len() {
            return Err("statistics do not cover the internal nodes".to_string());
        }
        for (node, s) in internal.iter().zip(&opt.stats) {
            let Some(&p) = position.get(node) else {
                return Err("internal node outside the canonical form".to_string());
            };
            stats.push(StoredNodeStats {
                position: p,
                candidates: s.candidates,
                pruned_inferior: s.pruned_inferior,
                pruned_memory: s.pruned_memory,
                redist_fallbacks: s.redist_fallbacks,
                live: s.live as u64,
                keys: s.keys as u64,
                widest_front: s.widest_front as u64,
                arena_hw_bytes: s.arena_hw_bytes,
                floor_exact: s.floor_exact,
            });
        }
        let mut counters: Vec<CounterRow> = opt
            .counters
            .iter()
            .map(|(name, value)| CounterRow { name: name.to_string(), value })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let entry = Entry {
            schema: PLAN_CACHE_SCHEMA.to_string(),
            code_version: CODE_VERSION.to_string(),
            expr_hash: hex128(key.expr_hash),
            procs: key.procs,
            mem_limit_words: key.mem_limit_words,
            cost_digest: hex128(key.cost_digest),
            cfg_digest: hex128(key.cfg_digest),
            planner: key.planner.to_string(),
            workload: canonical_source(tree, &key.form)
                .ok_or_else(|| "tree does not render canonically".to_string())?,
            plan: canon_plan,
            comm_cost: opt.comm_cost,
            mem_words: opt.mem_words,
            max_msg_words: opt.max_msg_words,
            output_redist_cost: opt.output_redist_cost,
            comm_lower_bound: opt.comm_lower_bound,
            comm_floor_exact: opt.comm_floor_exact,
            arena_hw_bytes: opt.arena_hw_bytes,
            counters,
            stats,
        };
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("creating plan cache {}: {e}", self.dir.display()))?;
        let json = serde_json::to_string_pretty(&entry).map_err(|e| e.to_string())?;
        atomic_write(&self.entry_path(key), &json)
            .map_err(|e| format!("writing plan cache entry: {e}"))?;
        self.bump("store");
        Ok(())
    }

    fn entry_files(&self) -> Vec<PathBuf> {
        let Ok(rd) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        let mut files: Vec<PathBuf> = rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "json")
                    && p.file_name().is_some_and(|n| n != "stats.json")
            })
            .collect();
        files.sort();
        files
    }

    /// Entry count, byte total, and the persistent counters.
    pub fn stats(&self) -> CacheStats {
        let files = self.entry_files();
        let bytes = files.iter().filter_map(|p| std::fs::metadata(p).ok()).map(|m| m.len()).sum();
        let st: StatsFile = std::fs::read_to_string(self.dir.join("stats.json"))
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_default();
        CacheStats {
            entries: files.len() as u64,
            bytes,
            counters: vec![
                (tce_obs::names::CACHE_HIT, st.hit),
                (tce_obs::names::CACHE_MISS, st.miss),
                (tce_obs::names::CACHE_STORE, st.store),
                (tce_obs::names::CACHE_EVICT_CORRUPT, st.evict_corrupt),
                (tce_obs::names::CACHE_EVICT_VERSION, st.evict_version),
                (tce_obs::names::CACHE_EVICT_DIGEST, st.evict_digest),
                (tce_obs::names::CACHE_EVICT_PLAN, st.evict_plan),
            ],
        }
    }

    /// Re-check every stored entry: parse, stamps, and — by rebuilding
    /// the canonical workload and rename-mapping the plan onto it — the
    /// full model-free plan-check registry. Returns one outcome per
    /// entry file.
    pub fn verify(&self) -> Vec<VerifyOutcome> {
        self.entry_files()
            .into_iter()
            .map(|path| {
                let file =
                    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
                VerifyOutcome { result: verify_entry(&path), file }
            })
            .collect()
    }

    /// Delete every entry file and the stats file; returns how many
    /// entries were removed.
    pub fn clear(&self) -> Result<u64, String> {
        let files = self.entry_files();
        let mut removed = 0u64;
        for f in &files {
            std::fs::remove_file(f).map_err(|e| format!("removing {}: {e}", f.display()))?;
            removed += 1;
        }
        let _ = std::fs::remove_file(self.dir.join("stats.json"));
        Ok(removed)
    }
}

fn atomic_write(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Validate one entry file against its own embedded canonical workload.
fn verify_entry(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let entry: Entry = serde_json::from_str(&text).map_err(|e| format!("corrupt JSON: {e}"))?;
    if entry.schema != PLAN_CACHE_SCHEMA {
        return Err(format!("stale schema `{}`", entry.schema));
    }
    if entry.code_version != CODE_VERSION {
        return Err(format!("stale code version `{}`", entry.code_version));
    }
    let tree = tce_expr::parse(&entry.workload)
        .map_err(|e| format!("embedded workload does not parse: {e}"))?
        .to_sequence()
        .map_err(|e| format!("embedded workload is malformed: {e}"))?
        .to_tree()
        .map_err(|e| format!("embedded workload has no tree: {e}"))?;
    let form = canonical_form(&tree);
    if hex128(form.hash) != entry.expr_hash {
        return Err("embedded workload does not match the stored expression hash".to_string());
    }
    let plan = plan_from_canonical(&entry.plan, &tree, &form)
        .ok_or("plan does not map onto the canonical form")?;
    match crate::hook::plan_checker() {
        Some(check) => check(&tree, &plan, None, None),
        None => validate_plan_basic(&tree, &plan),
    }
    .map_err(|e| format!("plan fails static checks:\n{e}"))?;
    Ok(format!("{} steps, comm {:.3} s", plan.steps.len(), plan.comm_cost))
}

/// Rebuild a [`CachedRun`] from a validated-looking entry; `None` sends
/// the caller down the `cache.evict_plan` path.
fn instantiate(
    tree: &ExprTree,
    cm: &CostModel,
    key: &CacheKey,
    entry: &Entry,
) -> Option<CachedRun> {
    let plan = plan_from_canonical(&entry.plan, tree, &key.form)?;
    // The gate: full static re-validation with the live cost model and
    // memory limit — the cost passes recompute every redistribution and
    // rotation bit-exactly and re-add the ledger.
    match crate::hook::plan_checker() {
        Some(check) => check(tree, &plan, Some(cm), Some(key.mem_limit_words)).ok()?,
        None => validate_plan_basic(tree, &plan).ok()?,
    }
    // The checker only sees the plan; tie the headline scalars to it so a
    // corrupted `comm_cost`/footprint cannot outlive plan validation.
    let drift = (entry.comm_cost - (plan.comm_cost + entry.output_redist_cost)).abs();
    if drift > 1e-9 * plan.comm_cost.abs().max(1.0)
        || entry.mem_words != plan.mem_words
        || entry.max_msg_words != plan.max_msg_words
    {
        return None;
    }
    let mut counters = tce_obs::Counters::new();
    for row in &entry.counters {
        counters.add(tce_obs::names::intern(&row.name)?, row.value);
    }
    let by_position: HashMap<u32, &StoredNodeStats> =
        entry.stats.iter().map(|s| (s.position, s)).collect();
    if by_position.len() != entry.stats.len() {
        return None; // duplicate positions
    }
    let mut stats = Vec::with_capacity(entry.stats.len());
    for node in tree.postorder() {
        if tree.node(node).is_leaf() {
            continue;
        }
        let s = by_position.get(&key.form.position_of(node)?)?;
        stats.push(NodeStats {
            name: tree.node(node).tensor.name.clone(),
            candidates: s.candidates,
            pruned_inferior: s.pruned_inferior,
            pruned_memory: s.pruned_memory,
            redist_fallbacks: s.redist_fallbacks,
            live: s.live as usize,
            keys: s.keys as usize,
            widest_front: s.widest_front as usize,
            arena_hw_bytes: s.arena_hw_bytes,
            floor_exact: s.floor_exact,
        });
    }
    if stats.len() != entry.stats.len() {
        return None; // stored stats do not cover the internal nodes
    }
    let opt = Optimized {
        comm_cost: entry.comm_cost,
        mem_words: entry.mem_words,
        max_msg_words: entry.max_msg_words,
        sets: HashMap::new(),
        best_index: 0,
        output_redist_cost: entry.output_redist_cost,
        stats,
        arena_hw_bytes: entry.arena_hw_bytes,
        counters,
        comm_lower_bound: entry.comm_lower_bound,
        comm_floor_exact: entry.comm_floor_exact,
    };
    Some(CachedRun { plan, opt })
}

fn map_dist(d: Distribution, f: &impl Fn(IndexId) -> Option<IndexId>) -> Option<Distribution> {
    let half = |h: Option<IndexId>| -> Option<Option<IndexId>> {
        match h {
            None => Some(None),
            Some(ix) => f(ix).map(Some),
        }
    };
    Some(Distribution { d1: half(d.d1)?, d2: half(d.d2)? })
}

fn map_fusion(p: &FusionPrefix, f: &impl Fn(IndexId) -> Option<IndexId>) -> Option<FusionPrefix> {
    let ids: Vec<IndexId> = p.iter().map(f).collect::<Option<_>>()?;
    // `FusionPrefix::new` rejects duplicates by panicking; an entry is
    // untrusted input, so pre-check and fail the mapping instead.
    for (i, a) in ids.iter().enumerate() {
        if ids[..i].contains(a) {
            return None;
        }
    }
    Some(FusionPrefix::new(ids))
}

fn map_plan(
    plan: &ExecutionPlan,
    node: &impl Fn(NodeId) -> Option<NodeId>,
    ix: &impl Fn(IndexId) -> Option<IndexId>,
    name: &impl Fn(NodeId) -> String,
) -> Option<ExecutionPlan> {
    let mut steps = Vec::with_capacity(plan.steps.len());
    for s in &plan.steps {
        let n = node(s.node)?;
        let mut pattern = s.pattern;
        if let Some(p) = &mut pattern {
            let half = |h: Option<IndexId>| -> Option<Option<IndexId>> {
                match h {
                    None => Some(None),
                    Some(i) => ix(i).map(Some),
                }
            };
            p.i = half(p.i)?;
            p.j = half(p.j)?;
            p.k = half(p.k)?;
        }
        let mut operands = Vec::with_capacity(s.operands.len());
        for o in &s.operands {
            let on = node(o.node)?;
            operands.push(PlanOperand {
                node: on,
                name: name(on),
                required_dist: map_dist(o.required_dist, ix)?,
                produced_dist: map_dist(o.produced_dist, ix)?,
                fusion: map_fusion(&o.fusion, ix)?,
                redist_cost: o.redist_cost,
                rotate_cost: o.rotate_cost,
                is_leaf: o.is_leaf,
            });
        }
        steps.push(PlanStep {
            node: n,
            result_name: name(n),
            pattern,
            result_dist: map_dist(s.result_dist, ix)?,
            result_fusion: map_fusion(&s.result_fusion, ix)?,
            result_rotate_cost: s.result_rotate_cost,
            surrounding: map_fusion(&s.surrounding, ix)?,
            operands,
        });
    }
    Some(ExecutionPlan {
        steps,
        comm_cost: plan.comm_cost,
        mem_words: plan.mem_words,
        max_msg_words: plan.max_msg_words,
    })
}

fn plan_to_canonical(
    plan: &ExecutionPlan,
    position: &HashMap<NodeId, u32>,
    number: &HashMap<IndexId, u32>,
) -> Option<ExecutionPlan> {
    map_plan(
        plan,
        &|n| position.get(&n).map(|&p| NodeId(p)),
        &|i| number.get(&i).map(|&x| IndexId(x)),
        &|n| format!("n{}", n.0),
    )
}

fn plan_from_canonical(
    stored: &ExecutionPlan,
    tree: &ExprTree,
    form: &CanonicalForm,
) -> Option<ExecutionPlan> {
    let mut plan = map_plan(
        stored,
        &|n| form.node_order.get(n.0 as usize).copied(),
        &|i| form.index_order.get(i.0 as usize).copied(),
        &|n| tree.node(n).tensor.name.clone(),
    )?;
    align_operands(tree, &mut plan)?;
    Some(plan)
}

/// Restore the `operands[0] == left child` invariant on a remapped plan.
///
/// Two isomorphic trees share one canonical form, but the canonical
/// walk's chosen operand order for a commutative contraction may mirror
/// this tree's declared order. A mirrored step arrives with its operand
/// entries swapped relative to `tree.children`, and the Cannon pattern's
/// `I`/`J` groups mirrored with them. Transposing both is an exact
/// relabeling: for every participant array `operand_dist`, the rotating
/// role, and the travel dimension are preserved, so the recomputed costs
/// and layouts are bit-identical to the stored ones.
fn align_operands(tree: &ExprTree, plan: &mut ExecutionPlan) -> Option<()> {
    use tce_dist::Role;
    for step in &mut plan.steps {
        let children = tree.children(step.node);
        if children.len() != 2 || step.operands.len() != 2 {
            continue;
        }
        if step.operands[0].node == children[0] && step.operands[1].node == children[1] {
            continue;
        }
        if step.operands[0].node != children[1] || step.operands[1].node != children[0] {
            return None; // not a permutation of this node's children
        }
        step.operands.swap(0, 1);
        if let Some(p) = &mut step.pattern {
            std::mem::swap(&mut p.i, &mut p.j);
            let flip = |r: Role| match r {
                Role::I => Role::J,
                Role::J => Role::I,
                Role::K => Role::K,
            };
            p.assign.dim1 = flip(p.assign.dim1);
            p.assign.dim2 = flip(p.assign.dim2);
        }
    }
    Some(())
}

/// Render the canonical form of the tree back to parseable `.tce` source
/// with placeholder names (`x<number>` indices, `n<position>` arrays) —
/// the expression record `tce cache verify` rebuilds and checks against.
fn canonical_source(tree: &ExprTree, form: &CanonicalForm) -> Option<String> {
    use std::fmt::Write as _;
    use tce_expr::NodeKind;
    let number: HashMap<IndexId, u32> =
        form.index_order.iter().enumerate().map(|(n, &ix)| (ix, n as u32)).collect();
    let position: HashMap<NodeId, u32> =
        form.node_order.iter().enumerate().map(|(p, &n)| (n, p as u32)).collect();
    let dims_of = |node: NodeId| -> Option<String> {
        let names: Vec<String> = tree
            .node(node)
            .tensor
            .dims
            .iter()
            .map(|d| number.get(d).map(|x| format!("x{x}")))
            .collect::<Option<_>>()?;
        Some(names.join(","))
    };
    let mut src = String::new();
    for (n, &ix) in form.index_order.iter().enumerate() {
        let _ = writeln!(src, "range x{n} = {};", tree.space.extent(ix));
    }
    for &node in &form.node_order {
        let p = position.get(&node)?;
        match &tree.node(node).kind {
            NodeKind::Leaf => {
                let _ = writeln!(src, "input n{p}[{}];", dims_of(node)?);
            }
            NodeKind::Contract { sum, left, right } => {
                let lhs = format!("n{p}[{}]", dims_of(node)?);
                let l = format!("n{}[{}]", position.get(left)?, dims_of(*left)?);
                let r = format!("n{}[{}]", position.get(right)?, dims_of(*right)?);
                if sum.is_empty() {
                    let _ = writeln!(src, "{lhs} = {l} * {r};");
                } else {
                    let sums: Vec<String> = sum
                        .iter()
                        .map(|s| number.get(&s).map(|x| format!("x{x}")))
                        .collect::<Option<_>>()?;
                    let _ = writeln!(src, "{lhs} = sum[{}] {l} * {r};", sums.join(","));
                }
            }
            NodeKind::Reduce { sum, child } => {
                let _ = writeln!(
                    src,
                    "n{p}[{}] = sum[x{}] n{}[{}];",
                    dims_of(node)?,
                    number.get(sum)?,
                    position.get(child)?,
                    dims_of(*child)?,
                );
            }
        }
    }
    Some(src)
}
