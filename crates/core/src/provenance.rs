//! Search provenance: what each node kept, what won, and where the
//! seconds go.
//!
//! [`crate::explain`] tells the paper's headline story (constrained vs.
//! unconstrained optimum); this module tells the *search's* story, node by
//! node: the winning `(dist, fusion)` with its cost, the nearest live
//! runner-ups with cost deltas, the per-`(dist, fusion)` frontier
//! occupancy, and a per-communication-kind attribution of the winning
//! plan's cost built with [`CommBreakdown`] from the same uniform-round
//! decomposition the simulator charges. Everything is reconstructed
//! *post-hoc* from the [`Optimized`] solution sets — the DP hot path is
//! untouched — and every listing is sorted, so the output is a
//! deterministic function of the (thread-count-invariant) search result.
//!
//! `tce explain` renders [`Provenance`] as a per-node table;
//! `tce report` serializes it (plus simulator roll-ups) as the
//! `tce-report/v3` JSON schema (v2 added the certified `lower_bound` /
//! `gap` pair; v3 the additive `cache` section).

use std::collections::HashMap;
use std::fmt::Write as _;

use tce_cost::{CommBreakdown, CostModel};
use tce_dist::cannon::num_steps;
use tce_dist::{CannonPattern, Distribution, Operand, ProcGrid};
use tce_expr::{ExprTree, NodeId, NodeKind};
use tce_fusion::FusionPrefix;

use crate::dp::Optimized;
use crate::plan::{extract_plan, PlanStep};
use crate::solution::KeySummary;

/// Kind names, in the simulator's `CommKind::ALL` order.
pub const KIND_NAMES: [&str; 5] = ["Align", "Shift", "Home", "Redistribute", "Reduce"];

/// Per-kind activity of one step (or a whole plan): model seconds plus the
/// analytic event/message counts the PR 4 ledger proves the simulator
/// reproduces exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KindProfile {
    /// Model seconds attributed to this kind.
    pub seconds: f64,
    /// Communication events (rounds) of this kind.
    pub events: u64,
    /// Messages carried by those events.
    pub messages: u64,
}

/// A live alternative the search kept but the plan did not use.
#[derive(Clone, Debug)]
pub struct RunnerUp {
    /// Production distribution of the alternative.
    pub dist: Distribution,
    /// Fusion prefix of the alternative.
    pub fusion: FusionPrefix,
    /// Subtree communication cost (seconds).
    pub cost: f64,
    /// `cost − winner.cost`. At non-root nodes this can be *negative*: the
    /// bound solution is chosen by the parent for its global fit, and a
    /// locally cheaper alternative that costs more downstream stays a
    /// runner-up.
    pub delta: f64,
    /// Per-processor memory (words) of the alternative's subtree.
    pub mem_words: u128,
}

/// One internal node's provenance.
#[derive(Clone, Debug)]
pub struct NodeProvenance {
    /// The tree node.
    pub node: NodeId,
    /// Array name.
    pub name: String,
    /// Winning solution index in the node's final set.
    pub winner_index: usize,
    /// Winning production distribution.
    pub winner_dist: Distribution,
    /// Winning fusion prefix.
    pub winner_fusion: FusionPrefix,
    /// Subtree communication cost of the winner (seconds).
    pub winner_cost: f64,
    /// The winning communication pattern (`None` for reduce/elementwise).
    pub pattern: Option<CannonPattern>,
    /// This step's communication split by kind (this node's contraction
    /// only — child subtree costs are attributed at the child).
    pub breakdown: CommBreakdown,
    /// Per-kind seconds + analytic event/message counts for this step.
    pub kinds: [KindProfile; 5],
    /// Cheapest live alternatives ≠ winner, ascending cost (top-k).
    pub runner_ups: Vec<RunnerUp>,
    /// Per-`(dist, fusion)` live frontier sizes, sorted.
    pub keys: Vec<KeySummary>,
}

/// The whole run's provenance: per-node records plus plan-level totals.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// Internal nodes, postorder (execution order).
    pub nodes: Vec<NodeProvenance>,
    /// Final output redistribution (seconds; zero unless a layout was
    /// requested). Attributed to Redistribute in [`Self::total`].
    pub output_redist_cost: f64,
    /// Whole-plan communication by kind, including the output
    /// redistribution. `total.total()` equals [`Optimized::comm_cost`]
    /// up to float summation order (within 1e-9 relative in tests).
    pub total: CommBreakdown,
    /// The headline cost being attributed ([`Optimized::comm_cost`]).
    pub comm_cost: f64,
    /// Certified communication lower bound
    /// ([`Optimized::comm_lower_bound`]): no plan under this cost model
    /// can beat it, so `gap` bounds how far the emitted plan can possibly
    /// be from any (even hypothetical) improvement.
    pub lower_bound: f64,
    /// `comm_cost − lower_bound`, the certified optimality gap.
    pub gap: f64,
    /// Whether `lower_bound` is the exact kernel minimum at every node
    /// ([`Optimized::comm_floor_exact`]). `false` means some node's floor
    /// enumeration fell back to the degenerate zero, so `gap` is an
    /// over-estimate and must not be read as tight.
    pub lower_bound_exact: bool,
}

/// Number of kernel invocations of `step`: the product of the per-
/// processor trip counts of its surrounding fused loops. Mirrors the
/// simulator's `nest` and the fuzz ledger's `invocations` — the
/// correspondence rules proven there are what make the analytic counts
/// here trustworthy.
fn invocations(tree: &ExprTree, step: &PlanStep, grid: ProcGrid) -> u64 {
    step.surrounding
        .iter()
        .map(|idx| {
            let extent = tree.space.extent(idx);
            let placed = std::iter::once(step.result_dist)
                .chain(step.operands.iter().map(|o| o.required_dist))
                .find_map(|d| d.position_of(idx));
            match placed {
                None => extent,
                Some(d) => extent / u64::from(grid.extent(d)),
            }
        })
        .product()
}

/// Split one step's communication by kind, with analytic event/message
/// counts (the ledger correspondence rules, run forward).
fn step_profile(
    tree: &ExprTree,
    step: &PlanStep,
    grid: ProcGrid,
) -> (CommBreakdown, [KindProfile; 5]) {
    let mut breakdown = CommBreakdown::default();
    let mut kinds = [KindProfile::default(); 5];
    let inv = invocations(tree, step, grid);

    // Redistribution: seconds from the ledger; one event per unfused
    // operand arriving in the wrong layout, one message per processor.
    let redist_seconds: f64 = step.operands.iter().map(|o| o.redist_cost).sum();
    let redist_events = step
        .operands
        .iter()
        .filter(|o| o.fusion.is_empty() && o.produced_dist != o.required_dist)
        .count() as u64;
    breakdown.add(&CommBreakdown::redistribution(redist_seconds));
    kinds[3] = KindProfile {
        seconds: redist_seconds,
        events: redist_events,
        messages: redist_events * u64::from(grid.num_procs()),
    };

    match step.pattern {
        Some(pat) => {
            let rounds =
                if pat.rotation_index().is_some() { u64::from(num_steps(grid)) } else { 1 };
            for (role, op) in [Operand::Left, Operand::Right].into_iter().zip(&step.operands) {
                if pat.travel_dim(role).is_some() {
                    let b = CommBreakdown::rotating_input(op.rotate_cost, rounds);
                    breakdown.add(&b);
                    kinds[0].seconds += b.align;
                    kinds[0].events += inv;
                    kinds[1].seconds += b.shift;
                    kinds[1].events += (rounds - 1) * inv;
                }
            }
            if pat.travel_dim(Operand::Result).is_some() {
                let b = CommBreakdown::rotating_result(step.result_rotate_cost, rounds);
                breakdown.add(&b);
                kinds[1].seconds += b.shift;
                kinds[1].events += (rounds - 1) * inv;
                kinds[2].seconds += b.home;
                kinds[2].events += inv;
            }
            // Every rotation round is one nearest-neighbour message.
            for k in &mut kinds[0..3] {
                k.messages = k.events;
            }
        }
        None => {
            // Patternless: any result cost is a distributed reduction.
            breakdown.add(&CommBreakdown::reduction(step.result_rotate_cost));
            kinds[4].seconds = step.result_rotate_cost;
            let distributed_sum = match &tree.node(step.node).kind {
                NodeKind::Reduce { sum, .. } => step.operands[0].required_dist.position_of(*sum),
                _ => None,
            };
            if let Some(d) = distributed_sum {
                kinds[4].events = inv;
                kinds[4].messages = inv * u64::from(grid.extent(d));
            }
        }
    }
    (breakdown, kinds)
}

/// Map each internal node to the solution index the winning plan bound,
/// by walking the decision records from the root winner.
fn winner_indices(tree: &ExprTree, opt: &Optimized) -> HashMap<NodeId, usize> {
    let mut winners = HashMap::new();
    let mut stack = vec![(tree.root(), opt.best_index)];
    while let Some((node, index)) = stack.pop() {
        winners.insert(node, index);
        if let Some(choice) = opt.sets[&node].choice(index) {
            for b in &choice.children {
                if !tree.node(b.node).is_leaf() {
                    stack.push((b.node, b.sol_index));
                }
            }
        }
    }
    winners
}

/// Build the full provenance of an optimization result. `top_k` bounds the
/// runner-up listing per node (the acceptance bar is 3).
pub fn build_provenance(
    tree: &ExprTree,
    opt: &Optimized,
    cm: &CostModel,
    top_k: usize,
) -> Provenance {
    let grid = cm.grid;
    let plan = extract_plan(tree, opt);
    let steps: HashMap<NodeId, &PlanStep> = plan.steps.iter().map(|s| (s.node, s)).collect();
    let winners = winner_indices(tree, opt);

    let mut nodes = Vec::new();
    let mut total = CommBreakdown::default();
    for node in tree.postorder() {
        let n = tree.node(node);
        if n.is_leaf() {
            continue;
        }
        let set = &opt.sets[&node];
        let winner_index = winners[&node];
        let winner_cost = set.cost(winner_index);

        // Cheapest live alternatives, deterministic order: cost ascending,
        // then storage index (live_indices is already ascending).
        let mut alts: Vec<usize> = set.live_indices().filter(|&i| i != winner_index).collect();
        alts.sort_by(|&a, &b| set.cost(a).total_cmp(&set.cost(b)).then(a.cmp(&b)));
        let runner_ups = alts
            .into_iter()
            .take(top_k)
            .map(|i| RunnerUp {
                dist: set.dist(i),
                fusion: set.fusion(i).clone(),
                cost: set.cost(i),
                delta: set.cost(i) - winner_cost,
                mem_words: set.mem(i),
            })
            .collect();

        let (breakdown, kinds) = match steps.get(&node) {
            Some(step) => step_profile(tree, step, grid),
            // Unreachable for a well-formed plan (every internal node of
            // the winning tree has a step), but stay total.
            None => (CommBreakdown::default(), [KindProfile::default(); 5]),
        };
        total.add(&breakdown);

        nodes.push(NodeProvenance {
            node,
            name: n.tensor.name.clone(),
            winner_index,
            winner_dist: set.dist(winner_index),
            winner_fusion: set.fusion(winner_index).clone(),
            winner_cost,
            pattern: steps.get(&node).and_then(|s| s.pattern),
            breakdown,
            kinds,
            runner_ups,
            keys: set.key_summaries(),
        });
    }
    total.add(&CommBreakdown::redistribution(opt.output_redist_cost));
    Provenance {
        nodes,
        output_redist_cost: opt.output_redist_cost,
        total,
        comm_cost: opt.comm_cost,
        lower_bound: opt.comm_lower_bound,
        gap: opt.comm_cost - opt.comm_lower_bound,
        lower_bound_exact: opt.comm_floor_exact,
    }
}

/// Render a key as `dist/fusion` (fusion omitted when empty).
fn render_key(space: &tce_expr::IndexSpace, dist: Distribution, fusion: &FusionPrefix) -> String {
    if fusion.is_empty() {
        dist.render(space)
    } else {
        format!("{} fused {}", dist.render(space), fusion.render(space))
    }
}

/// The `tce explain` per-node table.
pub fn render_provenance(tree: &ExprTree, prov: &Provenance) -> String {
    let space = &tree.space;
    let mut out = String::new();
    for np in &prov.nodes {
        let pattern = match &np.pattern {
            Some(p) => p.render(space),
            None => "(no pattern)".to_string(),
        };
        let _ = writeln!(
            out,
            "{}: winner {} — {:.6} s, pattern {}",
            np.name,
            render_key(space, np.winner_dist, &np.winner_fusion),
            np.winner_cost,
            pattern,
        );
        let b = &np.breakdown;
        let _ = writeln!(
            out,
            "  step comm by kind: align {:.6}  shift {:.6}  home {:.6}  redist {:.6}  reduce {:.6}",
            b.align, b.shift, b.home, b.redistribute, b.reduce
        );
        if np.runner_ups.is_empty() {
            let _ = writeln!(out, "  runner-ups: none (frontier of 1)");
        } else {
            for (i, r) in np.runner_ups.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  runner-up {}: {} — {:.6} s (Δ {:+.6})",
                    i + 1,
                    render_key(space, r.dist, &r.fusion),
                    r.cost,
                    r.delta,
                );
            }
        }
        let keys: Vec<String> = np
            .keys
            .iter()
            .map(|k| format!("{}×{}", render_key(space, k.dist, &k.fusion), k.live))
            .collect();
        let _ = writeln!(
            out,
            "  frontier: {} live over {} keys [{}]",
            np.keys.iter().map(|k| k.live).sum::<usize>(),
            np.keys.len(),
            keys.join(", ")
        );
    }
    if prov.output_redist_cost > 0.0 {
        let _ = writeln!(out, "final output redistribution: {:.6} s", prov.output_redist_cost);
    }
    let t = &prov.total;
    let _ = writeln!(
        out,
        "total comm by kind: align {:.6}  shift {:.6}  home {:.6}  redist {:.6}  reduce {:.6}",
        t.align, t.shift, t.home, t.redistribute, t.reduce
    );
    let _ = writeln!(out, "total comm cost: {:.6} s (plan: {:.6} s)", t.total(), prov.comm_cost);
    let _ = writeln!(
        out,
        "certified lower bound: {:.6} s (gap {:.6} s{})",
        prov.lower_bound,
        prov.gap,
        if prov.lower_bound_exact { "" } else { "; floor inexact — gap is an over-estimate" }
    );
    out
}

/// The `tce-report/v3` machine-readable roll-up of the optimizer side
/// (v3 added the additive `cache` section: canonical expression hash and
/// the level-1 subtree-reuse tallies).
/// Every field is a deterministic function of the search result: wall
/// clock and the interleaving-dependent counters
/// ([`tce_obs::NONDETERMINISTIC_COUNTERS`]) are excluded, so the JSON is
/// bit-identical at any thread count.
pub fn report_json(
    tree: &ExprTree,
    opt: &Optimized,
    cm: &CostModel,
    top_k: usize,
) -> serde_json::Value {
    use serde_json::{Number, Value};
    let uint = |v: u64| Value::Number(Number::UInt(u128::from(v)));
    let big = |v: u128| Value::Number(Number::UInt(v));
    let float = |v: f64| Value::Number(Number::Float(v));
    let space = &tree.space;

    let prov = build_provenance(tree, opt, cm, top_k);

    let counters: Vec<(String, Value)> = opt
        .counters
        .iter()
        .filter(|(name, _)| !tce_obs::NONDETERMINISTIC_COUNTERS.contains(name))
        .map(|(name, v)| (name.to_string(), uint(v)))
        .collect();

    let kind_obj = |kinds: &[KindProfile; 5]| {
        Value::Object(
            KIND_NAMES
                .iter()
                .zip(kinds.iter())
                .map(|(name, k)| {
                    (
                        name.to_string(),
                        Value::Object(vec![
                            ("seconds".to_string(), float(k.seconds)),
                            ("events".to_string(), uint(k.events)),
                            ("messages".to_string(), uint(k.messages)),
                        ]),
                    )
                })
                .collect(),
        )
    };

    let mut kind_totals = [KindProfile::default(); 5];
    let nodes: Vec<Value> = prov
        .nodes
        .iter()
        .zip(opt.stats.iter())
        .map(|(np, stats)| {
            for (t, k) in kind_totals.iter_mut().zip(np.kinds.iter()) {
                t.seconds += k.seconds;
                t.events += k.events;
                t.messages += k.messages;
            }
            let runner_ups: Vec<Value> = np
                .runner_ups
                .iter()
                .map(|r| {
                    Value::Object(vec![
                        ("dist".to_string(), Value::String(r.dist.render(space))),
                        ("fusion".to_string(), Value::String(r.fusion.render(space))),
                        ("cost".to_string(), float(r.cost)),
                        ("delta".to_string(), float(r.delta)),
                        ("mem_words".to_string(), big(r.mem_words)),
                    ])
                })
                .collect();
            let keys: Vec<Value> = np
                .keys
                .iter()
                .map(|k| {
                    Value::Object(vec![
                        ("dist".to_string(), Value::String(k.dist.render(space))),
                        ("fusion".to_string(), Value::String(k.fusion.render(space))),
                        ("live".to_string(), uint(k.live as u64)),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("name".to_string(), Value::String(np.name.clone())),
                ("winner_dist".to_string(), Value::String(np.winner_dist.render(space))),
                ("winner_fusion".to_string(), Value::String(np.winner_fusion.render(space))),
                ("winner_cost".to_string(), float(np.winner_cost)),
                (
                    "pattern".to_string(),
                    match &np.pattern {
                        Some(p) => Value::String(p.render(space)),
                        None => Value::Null,
                    },
                ),
                ("comm_by_kind".to_string(), kind_obj(&np.kinds)),
                ("runner_ups".to_string(), Value::Array(runner_ups)),
                ("frontier_keys".to_string(), Value::Array(keys)),
                ("floor_exact".to_string(), Value::Bool(stats.floor_exact)),
                ("candidates".to_string(), uint(stats.candidates)),
                ("pruned_inferior".to_string(), uint(stats.pruned_inferior)),
                ("pruned_memory".to_string(), uint(stats.pruned_memory)),
                ("redist_fallbacks".to_string(), uint(stats.redist_fallbacks)),
                ("live".to_string(), uint(stats.live as u64)),
                ("keys".to_string(), uint(stats.keys as u64)),
                ("widest_front".to_string(), uint(stats.widest_front as u64)),
                ("arena_hw_bytes".to_string(), uint(stats.arena_hw_bytes)),
            ])
        })
        .collect();

    // Cache identity and reuse tallies. The report path always runs the
    // search (provenance needs the live solution sets), so level 2 is
    // reported as not hit; level 1 is the in-run subtree reuse, counted
    // deterministically at any thread count.
    let l1_hits = opt.counters.get(tce_obs::names::SUBTREE_HIT);
    let l1_misses = opt.counters.get(tce_obs::names::SUBTREE_MISS);
    let cache = Value::Object(vec![
        (
            "canonical_hash".to_string(),
            Value::String(format!("{:032x}", tce_expr::canonical_form(tree).hash)),
        ),
        ("level1_hits".to_string(), uint(l1_hits)),
        ("level1_misses".to_string(), uint(l1_misses)),
        (
            "level1_hit_rate".to_string(),
            float(if l1_hits + l1_misses == 0 {
                0.0
            } else {
                l1_hits as f64 / (l1_hits + l1_misses) as f64
            }),
        ),
        ("level2_hit".to_string(), Value::Bool(false)),
    ]);

    Value::Object(vec![
        ("schema".to_string(), Value::String("tce-report/v3".to_string())),
        ("cache".to_string(), cache),
        ("comm_cost".to_string(), float(opt.comm_cost)),
        ("lower_bound".to_string(), float(prov.lower_bound)),
        ("lower_bound_exact".to_string(), Value::Bool(prov.lower_bound_exact)),
        ("gap".to_string(), float(prov.gap)),
        ("output_redist_cost".to_string(), float(opt.output_redist_cost)),
        ("mem_words".to_string(), big(opt.mem_words)),
        ("max_msg_words".to_string(), big(opt.max_msg_words)),
        ("arena_hw_bytes".to_string(), uint(opt.arena_hw_bytes)),
        (
            "comm_by_kind".to_string(),
            Value::Object(vec![
                ("seconds".to_string(), {
                    let t = &prov.total;
                    Value::Object(
                        KIND_NAMES
                            .iter()
                            .zip([t.align, t.shift, t.home, t.redistribute, t.reduce])
                            .map(|(n, s)| (n.to_string(), float(s)))
                            .collect(),
                    )
                }),
                ("step_profiles".to_string(), kind_obj(&kind_totals)),
            ]),
        ),
        ("counters".to_string(), Value::Object(counters)),
        ("nodes".to_string(), Value::Array(nodes)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{optimize, OptimizerConfig};
    use tce_cost::MachineModel;
    use tce_expr::parse;

    fn matmul() -> (ExprTree, CostModel) {
        let src = "range i = 16; range j = 16; range k = 16;\n\
                   input A[i,k]; input B[k,j];\nC[i,j] = sum[k] A[i,k]*B[k,j];\n";
        let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let cm = CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap();
        (tree, cm)
    }

    #[test]
    fn breakdown_sums_to_the_plan_cost() {
        let (tree, cm) = matmul();
        let opt = optimize(&tree, &cm, &OptimizerConfig::default()).unwrap();
        let prov = build_provenance(&tree, &opt, &cm, 3);
        let total = prov.total.total();
        assert!(
            (total - opt.comm_cost).abs() <= 1e-9 * opt.comm_cost.abs().max(1.0),
            "breakdown {total} vs plan {}",
            opt.comm_cost
        );
        // Per-node: the step breakdown equals the plan step's comm.
        let plan = extract_plan(&tree, &opt);
        for np in &prov.nodes {
            let step = plan.steps.iter().find(|s| s.node == np.node).unwrap();
            let t = np.breakdown.total();
            assert!(
                (t - step.step_comm()).abs() <= 1e-9 * step.step_comm().abs().max(1.0),
                "{}: breakdown {t} vs step {}",
                np.name,
                step.step_comm()
            );
        }
    }

    #[test]
    fn winners_match_the_extracted_plan() {
        let (tree, cm) = matmul();
        let opt = optimize(&tree, &cm, &OptimizerConfig::default()).unwrap();
        let prov = build_provenance(&tree, &opt, &cm, 3);
        let plan = extract_plan(&tree, &opt);
        for np in &prov.nodes {
            let step = plan.steps.iter().find(|s| s.node == np.node).unwrap();
            assert_eq!(np.winner_dist, step.result_dist, "{}", np.name);
            assert_eq!(&np.winner_fusion, &step.result_fusion, "{}", np.name);
            // Runner-ups never repeat the winner and are cost-ascending.
            for pair in np.runner_ups.windows(2) {
                assert!(pair[0].cost <= pair[1].cost);
            }
        }
    }

    #[test]
    fn rendering_mentions_every_node_and_the_total() {
        let (tree, cm) = matmul();
        let opt = optimize(&tree, &cm, &OptimizerConfig::default()).unwrap();
        let prov = build_provenance(&tree, &opt, &cm, 3);
        let text = render_provenance(&tree, &prov);
        for np in &prov.nodes {
            assert!(text.contains(&np.name), "{text}");
        }
        assert!(text.contains("total comm by kind:"), "{text}");
        assert!(text.contains("runner-up"), "{text}");
    }

    #[test]
    fn report_json_is_schema_stable_and_deterministic() {
        let (tree, cm) = matmul();
        let opt = optimize(&tree, &cm, &OptimizerConfig::default()).unwrap();
        let a = serde_json::to_string_pretty(&report_json(&tree, &opt, &cm, 3)).unwrap();
        let opt2 = optimize(&tree, &cm, &OptimizerConfig::default()).unwrap();
        let b = serde_json::to_string_pretty(&report_json(&tree, &opt2, &cm, 3)).unwrap();
        assert_eq!(a, b, "same search, same report bytes");
        let v: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some("tce-report/v3"));
        assert!(v.get("comm_by_kind").is_some());
        // v3: the cache section records the canonical identity and the
        // level-1 reuse tallies; the report path never serves level 2.
        let cache = v.get("cache").expect("cache section");
        let hash = cache.get("canonical_hash").and_then(|h| h.as_str()).expect("hash");
        assert_eq!(hash.len(), 32, "canonical hash must be 32 hex chars: {hash}");
        assert!(matches!(cache.get("level2_hit"), Some(serde_json::Value::Bool(false))));
        assert!(cache.get("level1_hit_rate").and_then(|r| r.as_f64()).is_some());
        // The certificate is admissible and carried into the report.
        let lb = v.get("lower_bound").and_then(|x| x.as_f64()).expect("lower_bound");
        let cost = v.get("comm_cost").and_then(|x| x.as_f64()).expect("comm_cost");
        let gap = v.get("gap").and_then(|x| x.as_f64()).expect("gap");
        assert!(lb > 0.0 && lb <= cost, "lb {lb} vs cost {cost}");
        assert!((gap - (cost - lb)).abs() <= 1e-12 * cost.abs().max(1.0));
        assert!(v.get("nodes").and_then(|n| n.as_array()).map(|n| !n.is_empty()).unwrap_or(false));
        // The nondeterministic counters never leak into the report.
        let counters = v.get("counters").expect("counters section");
        for name in tce_obs::NONDETERMINISTIC_COUNTERS {
            assert!(counters.get(name).is_none(), "{name} leaked into the report");
        }
    }
}
