//! End-to-end tests of the memory-constrained communication minimization
//! DP against the paper's published solutions (Tables 1 and 2) and against
//! independent brute force.

use tce_core::{
    baselines, build_report, exhaustive::exhaustive_min, extract_plan, optimize, validate_plan,
    OptimizeError, OptimizerConfig,
};
use tce_cost::{CostModel, MachineModel};
use tce_expr::examples::{ccsd_tree, fig1_sequence, PAPER_EXTENTS};
use tce_expr::parse;

fn cm(procs: u32) -> CostModel {
    CostModel::for_square(MachineModel::itanium_cluster(), procs).unwrap()
}

/// Table 1: on 64 processors the memory is plentiful — the optimum is
/// completely unfused, never communicates T1, and needs ~98 s of
/// communication (7 % of the total runtime).
#[test]
fn table1_64_procs() {
    let tree = ccsd_tree(PAPER_EXTENTS);
    let cm = cm(64);
    let opt = optimize(&tree, &cm, &OptimizerConfig::default()).unwrap();
    let plan = extract_plan(&tree, &opt);
    validate_plan(&tree, &plan).unwrap();

    // No fusion anywhere.
    for step in &plan.steps {
        assert!(step.result_fusion.is_empty(), "step {} fused", step.result_name);
        assert!(step.surrounding.is_empty());
    }
    // T1 (the 55.3 GB monster) is never rotated: zero init and final comm.
    let t1_step = plan.step_for("T1").unwrap();
    assert_eq!(t1_step.result_rotate_cost, 0.0);
    let (_, t1_use) = plan.consumer_of("T1").unwrap();
    assert_eq!(t1_use.rotate_cost, 0.0);
    assert_eq!(t1_use.redist_cost, 0.0, "no redistribution of T1");
    // No redistribution at all in the optimum (init = final dists).
    for step in &plan.steps {
        for op in &step.operands {
            assert_eq!(op.redist_cost, 0.0, "unexpected redistribution of {}", op.name);
        }
    }
    // Total communication close to the paper's 98.0 s.
    assert!(
        (plan.comm_cost - 98.0).abs() / 98.0 < 0.25,
        "comm {:.1}s vs paper 98.0s",
        plan.comm_cost
    );
    // Memory: paper reports ≈2.04 GB/node of the 4 GB limit.
    let per_node_bytes = plan.mem_words * 8 * u128::from(cm.machine.procs_per_node);
    let gb = per_node_bytes as f64 / (1000.0 * 1_024_000.0);
    assert!((gb - 2.04).abs() < 0.1, "mem/node {gb:.2} GB vs paper 2.04 GB");
    // Headline: ~7 % of total runtime.
    let report = build_report(&tree, &plan, &cm);
    let pct = report.summary.comm_percent();
    assert!((pct - 7.0).abs() < 2.0, "comm share {pct:.1}% vs paper 7.0%");
}

/// Table 2: on 16 processors the unfused form does not fit (65.3 GB total
/// vs 32 GB). The optimum fuses the f loop, reducing T1(b,c,d,f) to
/// T1(b,c,d), keeps D fixed, and pays ~1900 s of communication (27 % of
/// the total).
#[test]
fn table2_16_procs() {
    let tree = ccsd_tree(PAPER_EXTENTS);
    let cm = cm(16);
    let opt = optimize(&tree, &cm, &OptimizerConfig::default()).unwrap();
    let plan = extract_plan(&tree, &opt);
    validate_plan(&tree, &plan).unwrap();

    // T1 is fused on exactly {f}.
    let t1_step = plan.step_for("T1").unwrap();
    let fused: Vec<String> =
        t1_step.result_fusion.iter().map(|i| tree.space.name(i).to_owned()).collect();
    assert_eq!(fused, vec!["f"], "T1 fused on {fused:?}");
    // The stored T1 is three-dimensional.
    let cfg = plan.fusion_config();
    assert_eq!(cfg.reduced_tensor(&tree, tree.find("T1").unwrap()).arity(), 3);
    // D is not communicated in step 1 (it lacks the fused f index; rotating
    // it would re-send the full block per f iteration).
    let (s1, d_op) = plan.consumer_of("D").unwrap();
    assert_eq!(s1.result_name, "T1");
    assert_eq!(d_op.rotate_cost, 0.0, "D must stay fixed");
    // T1 rotates in both its producing and consuming steps (the dominant
    // costs: paper 902.0 + 888.5 s).
    assert!(t1_step.result_rotate_cost > 500.0);
    let (_, t1_use) = plan.consumer_of("T1").unwrap();
    assert!(t1_use.rotate_cost > 500.0);
    // Total communication close to the paper's 1907.8 s.
    assert!(
        (plan.comm_cost - 1907.8).abs() / 1907.8 < 0.25,
        "comm {:.1}s vs paper 1907.8s",
        plan.comm_cost
    );
    // Memory fits in 2 GB/processor including the staging buffer.
    assert!(plan.mem_words + plan.max_msg_words <= cm.mem_limit_words());
    // Paper: ≈1.35 GB/node stored.
    let per_node_bytes = plan.mem_words * 8 * u128::from(cm.machine.procs_per_node);
    let gb = per_node_bytes as f64 / (1000.0 * 1_024_000.0);
    assert!((gb - 1.35).abs() < 0.15, "mem/node {gb:.2} GB vs paper 1.35 GB");
    // Headline: ~27 % of total runtime.
    let report = build_report(&tree, &plan, &cm);
    let pct = report.summary.comm_percent();
    assert!((pct - 27.3).abs() < 5.0, "comm share {pct:.1}% vs paper 27.3%");
}

/// The paper's counter-intuitive §4 observation: fewer processors ⇒ more
/// fusion needed ⇒ *higher* absolute communication cost.
#[test]
fn fewer_processors_cost_more_communication() {
    let tree = ccsd_tree(PAPER_EXTENTS);
    let c64 = optimize(&tree, &cm(64), &OptimizerConfig::default()).unwrap();
    let c16 = optimize(&tree, &cm(16), &OptimizerConfig::default()).unwrap();
    assert!(c16.comm_cost > 10.0 * c64.comm_cost);
}

/// Without a memory limit, 16 processors would communicate *less* than the
/// constrained solution — the gap is entirely the price of memory.
#[test]
fn memory_constraint_is_the_price() {
    let tree = ccsd_tree(PAPER_EXTENTS);
    let cm16 = cm(16);
    let constrained = optimize(&tree, &cm16, &OptimizerConfig::default()).unwrap();
    let unconstrained =
        baselines::optimize_unconstrained(&tree, &cm16, &OptimizerConfig::default()).unwrap();
    assert!(unconstrained.comm_cost < constrained.comm_cost);
    // And the unconstrained plan would not fit.
    assert!(unconstrained.mem_words + unconstrained.max_msg_words > cm16.mem_limit_words());
}

/// An impossible limit reports infeasibility instead of a wrong plan.
#[test]
fn infeasible_limit_is_reported() {
    let tree = ccsd_tree(PAPER_EXTENTS);
    let cm16 = cm(16);
    let cfg = OptimizerConfig { mem_limit_words: Some(1000), ..Default::default() };
    match optimize(&tree, &cm16, &cfg) {
        Err(OptimizeError::NoFeasibleSolution { limit_words }) => {
            assert_eq!(limit_words, 1000)
        }
        other => panic!("expected infeasibility, got {other:?}"),
    }
}

/// DP result equals independent brute force on a two-contraction chain.
#[test]
fn dp_matches_exhaustive() {
    let src = "\
range a = 24; range b = 16; range c = 12; range d = 8;
input A[a,b]; input B[b,c]; input C[c,d];
T[a,c] = sum[b] A[a,b] * B[b,c];
S[a,d] = sum[c] T[a,c] * C[c,d];
";
    let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
    let cm4 = CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap();
    for limit in [u128::MAX, 2000, 700] {
        let cfg = OptimizerConfig {
            mem_limit_words: Some(limit),
            max_prefix_len: 2,
            ..Default::default()
        };
        let dp = optimize(&tree, &cm4, &cfg);
        let ex = exhaustive_min(&tree, &cm4, limit, 2, false, false);
        match (dp, ex) {
            (Ok(dp), Some(ex)) => {
                assert!(
                    (dp.comm_cost - ex.comm_cost).abs() <= 1e-9 * ex.comm_cost.max(1.0),
                    "limit {limit}: dp {} vs exhaustive {}",
                    dp.comm_cost,
                    ex.comm_cost
                );
            }
            (Err(OptimizeError::NoFeasibleSolution { .. }), None) => {}
            (dp, ex) => panic!("limit {limit}: dp {dp:?} vs exhaustive {ex:?}"),
        }
    }
}

/// Disabling dominance pruning changes the work, never the answer.
#[test]
fn pruning_preserves_optimum() {
    let src = "\
range a = 24; range b = 16; range c = 12; range d = 8;
input A[a,b]; input B[b,c]; input C[c,d];
T[a,c] = sum[b] A[a,b] * B[b,c];
S[a,d] = sum[c] T[a,c] * C[c,d];
";
    let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
    let cm4 = CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap();
    let base = OptimizerConfig { max_prefix_len: 2, ..Default::default() };
    let pruned = optimize(&tree, &cm4, &base).unwrap();
    let unpruned =
        optimize(&tree, &cm4, &OptimizerConfig { disable_pruning: true, ..base }).unwrap();
    assert!((pruned.comm_cost - unpruned.comm_cost).abs() < 1e-9);
    // And pruning actually did something.
    let kept: usize = pruned.stats.iter().map(|s| s.live).sum();
    let kept_unpruned: usize = unpruned.stats.iter().map(|s| s.live).sum();
    assert!(kept < kept_unpruned);
}

/// Baseline comparisons: the joint optimizer never loses.
#[test]
fn baselines_never_beat_joint_optimizer() {
    let tree = ccsd_tree(PAPER_EXTENTS);
    let cm16 = cm(16);
    let base = OptimizerConfig::default();
    let joint = optimize(&tree, &cm16, &base).unwrap();

    let ff = baselines::fusion_first(&tree, &cm16, &base);
    if let Some(plan) = &ff.plan {
        assert!(plan.comm_cost >= joint.comm_cost * 0.999);
        // The sequential memory-minimal fusion over-fuses: strictly worse.
        assert!(
            plan.comm_cost > joint.comm_cost * 1.05,
            "fusion-first {:.0}s vs joint {:.0}s",
            plan.comm_cost,
            joint.comm_cost
        );
    }

    let df = baselines::distribution_first(&tree, &cm16, &base);
    match (&df.plan, &df.error) {
        (Some(plan), _) => assert!(plan.comm_cost >= joint.comm_cost * 0.999),
        (None, Some(e)) => {
            // Paper §2 argument (2): the frozen distribution can make every
            // memory-fitting fusion illegal.
            assert!(matches!(e, OptimizeError::NoFeasibleSolution { .. }));
        }
        _ => panic!("distribution_first returned neither plan nor error"),
    }
}

/// The Fig. 1 tree (pure summations + an element-wise product) goes
/// through the reduce/elementwise paths.
#[test]
fn fig1_tree_optimizes() {
    let tree = fig1_sequence(64, 64, 64, 64).to_tree().unwrap();
    let cm4 = CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap();
    let opt = optimize(&tree, &cm4, &OptimizerConfig::default()).unwrap();
    let plan = extract_plan(&tree, &opt);
    validate_plan(&tree, &plan).unwrap();
    assert!(opt.comm_cost >= 0.0);
    assert!(opt.mem_words > 0);
    assert_eq!(plan.steps.len(), 4);
}

/// Report rendering contains the paper's landmark numbers.
#[test]
fn report_contains_landmarks() {
    let tree = ccsd_tree(PAPER_EXTENTS);
    let cm16 = cm(16);
    let opt = optimize(&tree, &cm16, &OptimizerConfig::default()).unwrap();
    let plan = extract_plan(&tree, &opt);
    let report = build_report(&tree, &plan, &cm16);
    let text = tce_core::render_report(&report);
    // T1 reduced to (b,c,d) at 108 MB/node; A and T2 at 230.4 MB/node.
    assert!(text.contains("T1(b,c,d)"), "{text}");
    assert!(text.contains("108.0MB"), "{text}");
    assert!(text.contains("230.4MB"), "{text}");
    assert!(text.contains("Total communication"), "{text}");
}

/// Per-dimension RCost characterization (the paper measures per rotation-
/// index *position*): on the 16-processor fused solution, T1's two forced
/// rotations structurally travel *opposite* grid dimensions (production
/// rotates over `b`, consumption over `d`, and the shared layout pins them
/// to different dims), so exactly one T1 rotation rides each link speed —
/// the totals must reflect the asymmetry, and the optimizer must put the
/// remaining (sliced) rotations on the fast links.
#[test]
fn asymmetric_links_are_exploited() {
    use tce_dist::Operand;
    let tree = ccsd_tree(PAPER_EXTENTS);
    let sym = CostModel::for_square(MachineModel::itanium_cluster(), 16).unwrap();
    let base = optimize(&tree, &sym, &OptimizerConfig::default()).unwrap();

    // dim2 4x faster: strictly cheaper than the symmetric machine.
    let fast = CostModel::for_square(MachineModel::itanium_asymmetric(4.0), 16).unwrap();
    let fast_opt = optimize(&tree, &fast, &OptimizerConfig::default()).unwrap();
    assert!(fast_opt.comm_cost < base.comm_cost * 0.75, "{}", fast_opt.comm_cost);

    // dim2 4x slower: strictly more expensive, but the optimizer limits
    // the damage — one T1 rotation is forced onto the slow dimension, the
    // other must stay on the base-speed one (never both slow).
    let slow = CostModel::for_square(MachineModel::itanium_asymmetric(0.25), 16).unwrap();
    let slow_opt = optimize(&tree, &slow, &OptimizerConfig::default()).unwrap();
    assert!(slow_opt.comm_cost > base.comm_cost);
    let plan = extract_plan(&tree, &slow_opt);
    let t1_step = plan.step_for("T1").unwrap();
    let (_, t1_use) = plan.consumer_of("T1").unwrap();
    let both = [t1_step.result_rotate_cost, t1_use.rotate_cost];
    let slow_rotations = both.iter().filter(|&&c| c > 2000.0).count();
    assert_eq!(slow_rotations, 1, "exactly one T1 rotation on the slow dim: {both:?}");
    // The producing step's rotated pair travels opposite dims by construction.
    let pat = t1_step.pattern.unwrap();
    assert_ne!(pat.travel_dim(Operand::Result), pat.travel_dim(Operand::Left));
}

/// Plans serialize to JSON and back without losing the cost ledger.
#[test]
fn plan_json_round_trip() {
    use tce_core::ExecutionPlan;
    let tree = ccsd_tree(PAPER_EXTENTS);
    let cm16 = cm(16);
    let opt = optimize(&tree, &cm16, &OptimizerConfig::default()).unwrap();
    let plan = extract_plan(&tree, &opt);
    let json = plan.to_json();
    assert!(json.contains("\"result_name\": \"T1\""), "{json}");
    let back = ExecutionPlan::from_json(&json).unwrap();
    assert_eq!(back.steps.len(), plan.steps.len());
    assert!((back.comm_cost - plan.comm_cost).abs() < 1e-9);
    assert_eq!(back.mem_words, plan.mem_words);
    validate_plan(&tree, &back).unwrap();
    // The deserialized plan still simulates (structural fidelity).
    let tiny = ccsd_tree(tce_expr::examples::PaperExtents::tiny());
    let cm4 = cm(4);
    let opt4 = optimize(&tiny, &cm4, &OptimizerConfig::default()).unwrap();
    let plan4 = extract_plan(&tiny, &opt4);
    let back4 = ExecutionPlan::from_json(&plan4.to_json()).unwrap();
    let report = tce_sim::simulate(&tiny, &back4, &cm4, 13).unwrap();
    assert!(report.max_abs_err < 1e-10);
}

/// §3.3: "our approach works regardless of whether any initial or final
/// data distribution is given" — pinned layouts are honored and priced.
#[test]
fn pinned_input_and_output_distributions() {
    use std::collections::HashMap;
    use tce_dist::Distribution;
    let tree = ccsd_tree(PAPER_EXTENTS);
    let cm16 = cm(16);
    let free = optimize(&tree, &cm16, &OptimizerConfig::default()).unwrap();
    let free_plan = extract_plan(&tree, &free);

    // Pin D to a deliberately awkward layout: the optimizer must now pay a
    // redistribution for D (or reshape the plan), never beating the free
    // optimum.
    let ix = |s: &str| tree.space.lookup(s).unwrap();
    let mut input_dists = HashMap::new();
    input_dists.insert("D".to_string(), Distribution::pair(ix("l"), ix("c")));
    let pinned =
        optimize(&tree, &cm16, &OptimizerConfig { input_dists, ..Default::default() }).unwrap();
    assert!(pinned.comm_cost >= free.comm_cost);
    let plan = extract_plan(&tree, &pinned);
    validate_plan(&tree, &plan).unwrap();
    let (_, d_op) = plan.consumer_of("D").unwrap();
    // Either D was redistributed from the pinned layout, or the pinned
    // layout happened to be usable directly.
    assert_eq!(d_op.produced_dist.render(&tree.space), "<l,c>");
    assert!(d_op.redist_cost > 0.0, "the awkward pin must cost something");

    // Pinning the *output* to a layout the free optimum already produces
    // is free; pinning to a different one costs a final redistribution.
    let same = free_plan.step_for("S").unwrap().result_dist;
    let out_same =
        optimize(&tree, &cm16, &OptimizerConfig { output_dist: Some(same), ..Default::default() })
            .unwrap();
    assert!((out_same.comm_cost - free.comm_cost).abs() < 1e-9);
    assert_eq!(out_same.output_redist_cost, 0.0);

    let weird = Distribution::pair(ix("i"), ix("j"));
    let out_weird =
        optimize(&tree, &cm16, &OptimizerConfig { output_dist: Some(weird), ..Default::default() })
            .unwrap();
    assert!(out_weird.output_redist_cost > 0.0);
    assert!(out_weird.comm_cost > free.comm_cost);
    assert!(
        (out_weird.comm_cost
            - (extract_plan(&tree, &out_weird).comm_cost + out_weird.output_redist_cost))
            .abs()
            < 1e-9
    );
}

/// Closed-form sanity on a single square matmul: the optimum rotates two
/// of the three equal-size arrays once each, so the total cost is exactly
/// two characterized rotations, and memory is three blocks plus the
/// staging buffer.
#[test]
fn single_matmul_closed_form() {
    use tce_dist::GridDim;
    let src = "\
range i = 256; range j = 256; range k = 256;
input A[i,k]; input B[k,j];
C[i,j] = sum[k] A[i,k] * B[k,j];
";
    let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
    let cm4 = CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap();
    let opt = optimize(&tree, &cm4, &OptimizerConfig::default()).unwrap();
    let block_words: u128 = 128 * 128;
    let bytes = (block_words * 8) as f64;
    let expected = cm4.chr.rcost(2, GridDim::Dim1, bytes) + cm4.chr.rcost(2, GridDim::Dim2, bytes);
    assert!(
        (opt.comm_cost - expected).abs() < 1e-9,
        "comm {} vs closed form {expected}",
        opt.comm_cost
    );
    assert_eq!(opt.mem_words, 3 * block_words);
    assert_eq!(opt.max_msg_words, block_words);
    // The plan rotates exactly two operands, one per grid dimension.
    let plan = extract_plan(&tree, &opt);
    let step = &plan.steps[0];
    let pat = step.pattern.unwrap();
    assert_eq!(pat.rotated_operands().len(), 2);
}

/// The exhaustive checker enumerates the whole assignment space: its
/// reported count matches the combinatorics.
#[test]
fn exhaustive_counts_assignments() {
    let src = "\
range i = 8; range j = 8; range k = 8;
input A[i,k]; input B[k,j];
C[i,j] = sum[k] A[i,k] * B[k,j];
";
    let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
    let cm4 = CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap();
    let ex = exhaustive_min(&tree, &cm4, u128::MAX, 2, false, false).unwrap();
    // One contraction node: 1·1·1 triplets × 6 assignments = 6 patterns;
    // leaf edges A and B: prefixes over their 2 candidate dims capped at
    // 2 → 5 each; the root has no parent edge.
    assert_eq!(ex.assignments, 6 * 5 * 5);
    // And the optimum matches the DP.
    let dp = optimize(&tree, &cm4, &OptimizerConfig { max_prefix_len: 2, ..Default::default() })
        .unwrap();
    assert!((dp.comm_cost - ex.comm_cost).abs() < 1e-9);
}

/// Distribution-first succeeds where memory is plentiful (64 procs) and
/// matches the joint optimizer there.
#[test]
fn distribution_first_matches_joint_when_memory_is_plentiful() {
    let tree = ccsd_tree(PAPER_EXTENTS);
    let cm64 = cm(64);
    let base = OptimizerConfig::default();
    let joint = optimize(&tree, &cm64, &base).unwrap();
    let df = baselines::distribution_first(&tree, &cm64, &base);
    let plan = df.plan.expect("feasible at 64 procs");
    assert!((plan.comm_cost - joint.comm_cost).abs() <= 1e-6 * joint.comm_cost);
}

/// A tree whose root is an input array computes nothing: a typed error,
/// not a panic.
#[test]
fn leaf_rooted_tree_is_unsupported() {
    use tce_expr::{ExprTree, IndexSpace, Tensor};
    let mut sp = IndexSpace::new();
    let i = sp.declare("i", 4);
    let mut tree = ExprTree::new(sp);
    let leaf = tree.add_leaf(Tensor::new("A", vec![i]));
    tree.set_root(leaf);
    let cm4 = cm(4);
    match optimize(&tree, &cm4, &OptimizerConfig::default()) {
        Err(OptimizeError::Unsupported(msg)) => assert!(msg.contains("root")),
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

/// Two optimizer runs in fresh hash-map states produce identical plans —
/// tie-breaking must not depend on hash iteration order.
#[test]
fn optimization_is_deterministic() {
    let tree = ccsd_tree(PAPER_EXTENTS);
    let cm16 = cm(16);
    let p1 = extract_plan(&tree, &optimize(&tree, &cm16, &OptimizerConfig::default()).unwrap());
    let p2 = extract_plan(&tree, &optimize(&tree, &cm16, &OptimizerConfig::default()).unwrap());
    assert_eq!(p1.to_json(), p2.to_json());
}

/// Two isomorphic matrix-product subtrees under one root: level-1 subtree
/// reuse replays the second from the first through a monotone index
/// rename, bit-identically — same plan bytes, same cost bits, same
/// per-node statistics, same counters outside the documented
/// nondeterministic set — with the `dp.subtree_hit` counter proving the
/// replay actually happened.
#[test]
fn subtree_reuse_is_bit_identical() {
    let src = "\
range a, b, c = 16; range p, q, r = 16;
input A[a,b]; input B[b,c]; input C[p,q]; input D[q,r];
T1[a,c] = sum[b] A[a,b] * B[b,c];
T2[p,r] = sum[q] C[p,q] * D[q,r];
S[a,p] = sum[c,r] T1[a,c] * T2[p,r];
";
    let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
    let cm4 = CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap();
    let base = OptimizerConfig { max_prefix_len: 2, threads: 1, ..Default::default() };
    let with = optimize(&tree, &cm4, &base).unwrap();
    let without =
        optimize(&tree, &cm4, &OptimizerConfig { disable_subtree_reuse: true, ..base.clone() })
            .unwrap();

    // The reuse actually fired: T2 replayed T1's frontier.
    assert!(with.counters.get(tce_obs::names::SUBTREE_HIT) >= 1, "no subtree hit recorded");
    assert_eq!(without.counters.get(tce_obs::names::SUBTREE_HIT), 0);

    // Bit-identical results and statistics.
    assert_eq!(with.comm_cost.to_bits(), without.comm_cost.to_bits());
    assert_eq!(with.mem_words, without.mem_words);
    assert_eq!(with.max_msg_words, without.max_msg_words);
    assert_eq!(with.arena_hw_bytes, without.arena_hw_bytes);
    assert_eq!(with.comm_lower_bound.to_bits(), without.comm_lower_bound.to_bits());
    assert_eq!(format!("{:?}", with.stats), format!("{:?}", without.stats));
    let p1 = extract_plan(&tree, &with);
    let p2 = extract_plan(&tree, &without);
    assert_eq!(p1.to_json(), p2.to_json());
    validate_plan(&tree, &p1).unwrap();

    // Every counter outside the documented nondeterministic set agrees.
    for (name, value) in with.counters.iter() {
        if tce_obs::NONDETERMINISTIC_COUNTERS.contains(&name) {
            continue;
        }
        assert_eq!(value, without.counters.get(name), "counter {name} diverged");
    }
    for (name, value) in without.counters.iter() {
        if tce_obs::NONDETERMINISTIC_COUNTERS.contains(&name) {
            continue;
        }
        assert_eq!(value, with.counters.get(name), "counter {name} diverged");
    }
}
