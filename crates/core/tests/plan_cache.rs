//! Level-2 on-disk plan cache: round-trip bit-identity, rename-invariant
//! hits, and the eviction ladder.

use std::path::PathBuf;

use tce_core::{cache_key, extract_plan, optimize, validate_plan, OptimizerConfig, PlanCache};
use tce_cost::{CostModel, MachineModel};
use tce_expr::{parse, ExprTree};

fn tmp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tce-cache-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tree_of(src: &str) -> ExprTree {
    parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap()
}

const CHAIN: &str = "\
range a, b, c, d = 16;
T1[a,c] = sum[b] A[a,b] * B[b,c];
T2[a,d] = sum[c] T1[a,c] * C[c,d];
";

/// The same contraction with every index renamed and both contractions'
/// operands commuted — must map to the same cache entry.
const CHAIN_RENAMED: &str = "\
range p, q, r, s = 16;
U1[p,r] = sum[q] Y[q,r] * X[p,q];
U2[p,s] = sum[r] Z[r,s] * U1[p,r];
";

const CHAIN_INPUTS: &str = "input A[a,b]; input B[b,c]; input C[c,d];\n";
const CHAIN_RENAMED_INPUTS: &str = "input X[p,q]; input Y[q,r]; input Z[r,s];\n";

fn with_inputs(ranges_then_stmts: &str, inputs: &str) -> String {
    let (first, rest) = ranges_then_stmts.split_once('\n').unwrap();
    format!("{first}\n{inputs}{rest}")
}

#[test]
fn store_then_lookup_is_bit_identical() {
    let tree = tree_of(&with_inputs(CHAIN, CHAIN_INPUTS));
    let cm = CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap();
    let cfg = OptimizerConfig { max_prefix_len: 2, threads: 1, ..Default::default() };
    let opt = optimize(&tree, &cm, &cfg).unwrap();
    let plan = extract_plan(&tree, &opt);

    let cache = PlanCache::at(tmp_cache("roundtrip"));
    let key = cache_key(&tree, &cm, &cfg).expect("cacheable");
    // Cold: miss.
    assert!(cache.lookup(&tree, &cm, &key).run.is_none());
    cache.store(&tree, &key, &plan, &opt).unwrap();
    // Warm: hit, bit-identical.
    let hit = cache.lookup(&tree, &cm, &key).run.expect("warm hit");
    assert_eq!(hit.plan.to_json(), plan.to_json());
    assert_eq!(hit.opt.comm_cost.to_bits(), opt.comm_cost.to_bits());
    assert_eq!(hit.opt.mem_words, opt.mem_words);
    assert_eq!(hit.opt.max_msg_words, opt.max_msg_words);
    assert_eq!(hit.opt.output_redist_cost.to_bits(), opt.output_redist_cost.to_bits());
    assert_eq!(hit.opt.comm_lower_bound.to_bits(), opt.comm_lower_bound.to_bits());
    assert_eq!(hit.opt.comm_floor_exact, opt.comm_floor_exact);
    assert_eq!(hit.opt.arena_hw_bytes, opt.arena_hw_bytes);
    assert_eq!(format!("{:?}", hit.opt.stats), format!("{:?}", opt.stats));
    for (name, value) in opt.counters.iter() {
        assert_eq!(hit.opt.counters.get(name), value, "counter {name} diverged");
    }
    let stats = cache.stats();
    assert_eq!(stats.entries, 1);
    assert!(stats.bytes > 0);
    // Persistent totals recorded across the calls above.
    let get =
        |n: &str| stats.counters.iter().find(|(name, _)| *name == n).map(|&(_, v)| v).unwrap();
    assert_eq!(get("cache.hit"), 1);
    assert_eq!(get("cache.miss"), 1);
    assert_eq!(get("cache.store"), 1);
    // verify() accepts the entry; clear() empties the directory.
    let verified = cache.verify();
    assert_eq!(verified.len(), 1);
    verified[0].result.as_ref().unwrap();
    assert_eq!(cache.clear().unwrap(), 1);
    assert_eq!(cache.stats().entries, 0);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn renamed_commuted_expression_hits_same_entry() {
    let tree = tree_of(&with_inputs(CHAIN, CHAIN_INPUTS));
    let renamed = tree_of(&with_inputs(CHAIN_RENAMED, CHAIN_RENAMED_INPUTS));
    let cm = CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap();
    let cfg = OptimizerConfig { max_prefix_len: 2, threads: 1, ..Default::default() };
    let key = cache_key(&tree, &cm, &cfg).unwrap();
    let key2 = cache_key(&renamed, &cm, &cfg).unwrap();
    assert_eq!(key.expr_hash, key2.expr_hash, "canonical hashes differ");
    assert_eq!(key.file_name(), key2.file_name());

    let opt = optimize(&tree, &cm, &cfg).unwrap();
    let plan = extract_plan(&tree, &opt);
    let cache = PlanCache::at(tmp_cache("rename"));
    cache.store(&tree, &key, &plan, &opt).unwrap();

    // The mapped plan must be valid on the renamed tree and match the
    // fresh optimum's cost bit-for-bit. (The *plans* may be mirror
    // images: fresh search enumerates operands in declared order, so a
    // commuted source can legally pick the symmetric equal-cost layout.)
    let hit = cache.lookup(&renamed, &cm, &key2).run.expect("isomorphic hit");
    validate_plan(&renamed, &hit.plan).unwrap();
    let fresh = optimize(&renamed, &cm, &cfg).unwrap();
    assert_eq!(hit.opt.comm_cost.to_bits(), fresh.comm_cost.to_bits());
    assert_eq!(hit.plan.comm_cost.to_bits(), extract_plan(&renamed, &fresh).comm_cost.to_bits());
    assert_eq!(hit.opt.mem_words, fresh.mem_words);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn corrupt_and_stale_entries_are_evicted() {
    let tree = tree_of(&with_inputs(CHAIN, CHAIN_INPUTS));
    let cm = CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap();
    let cfg = OptimizerConfig { max_prefix_len: 2, threads: 1, ..Default::default() };
    let opt = optimize(&tree, &cm, &cfg).unwrap();
    let plan = extract_plan(&tree, &opt);
    let cache = PlanCache::at(tmp_cache("evict"));
    let key = cache_key(&tree, &cm, &cfg).unwrap();
    let path = cache.dir().join(key.file_name());

    // Truncated JSON → evict_corrupt.
    cache.store(&tree, &key, &plan, &opt).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    let out = cache.lookup(&tree, &cm, &key);
    assert!(out.run.is_none());
    assert_eq!(out.evicted, Some(tce_obs::names::CACHE_EVICT_CORRUPT));
    assert!(!path.exists(), "evicted entry must be deleted");

    // Stale version stamp → evict_version.
    cache.store(&tree, &key, &plan, &opt).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, text.replace("tce-plan-cache/v1", "tce-plan-cache/v0")).unwrap();
    let out = cache.lookup(&tree, &cm, &key);
    assert_eq!(out.evicted, Some(tce_obs::names::CACHE_EVICT_VERSION));

    // Foreign characterization digest → evict_digest.
    cache.store(&tree, &key, &plan, &opt).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let digest = format!("{:032x}", key.cost_digest);
    std::fs::write(&path, text.replace(&digest, &format!("{:032x}", !key.cost_digest))).unwrap();
    let out = cache.lookup(&tree, &cm, &key);
    assert_eq!(out.evicted, Some(tce_obs::names::CACHE_EVICT_DIGEST));

    // A plan failing validation → evict_plan. Break a stored step cost so
    // the ledger no longer adds up.
    cache.store(&tree, &key, &plan, &opt).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let cost = format!("{:?}", plan.comm_cost);
    let broken = text.replacen(&cost, &format!("{:?}", plan.comm_cost + 7.5), 1);
    assert_ne!(broken, text, "fixture must actually change the entry");
    std::fs::write(&path, broken).unwrap();
    let out = cache.lookup(&tree, &cm, &key);
    assert_eq!(out.evicted, Some(tce_obs::names::CACHE_EVICT_PLAN));

    // After every eviction the persistent totals tell the story.
    let stats = cache.stats();
    let get =
        |n: &str| stats.counters.iter().find(|(name, _)| *name == n).map(|&(_, v)| v).unwrap();
    assert_eq!(get("cache.evict_corrupt"), 1);
    assert_eq!(get("cache.evict_version"), 1);
    assert_eq!(get("cache.evict_digest"), 1);
    assert_eq!(get("cache.evict_plan"), 1);
    assert_eq!(get("cache.store"), 4);
    let _ = std::fs::remove_dir_all(cache.dir());
}
