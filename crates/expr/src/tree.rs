//! Expression trees of tensor contractions.
//!
//! The paper's binary-tree representation (Fig. 1b): leaves are input
//! arrays; internal nodes are either *contraction* nodes
//! `Tr = Σ_K  X × Y` (a multiplication node together with the summations
//! immediately above it — the form every step of Fig. 2a takes) or pure
//! *reduction* nodes `Tr = Σ_i X`.
//!
//! A contraction node with the property of §3.1 — every result index occurs
//! in exactly one operand, every summation index in both — is a *generalized
//! matrix multiplication* `C(I,J) += A(I,K)·B(K,J)` and can be carried out by
//! the generalized Cannon algorithm; [`ExprTree::contraction_groups`] exposes
//! the `(I, J, K)` decomposition.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ExprError;
use crate::index::{IndexId, IndexSet, IndexSpace};
use crate::tensor::Tensor;

/// Handle to a node of an [`ExprTree`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena position.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a tree node computes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An input array.
    Leaf,
    /// `result = Σ_sum left × right`; `sum` may be empty (a pure
    /// multiplication node, as in Fig. 1b's `T3 = T1 × T2`).
    Contract {
        /// Summation indices (the paper's index set `K` when the node is a
        /// proper generalized matrix multiplication).
        sum: IndexSet,
        /// Left operand node.
        left: NodeId,
        /// Right operand node.
        right: NodeId,
    },
    /// `result = Σ_sum child` — a pure summation node (Fig. 1b's `Σi`, `Σk`,
    /// `Σj`).
    Reduce {
        /// The single summation index.
        sum: IndexId,
        /// Operand node.
        child: NodeId,
    },
}

/// One node: the array it produces plus how it is produced.
#[derive(Clone, Debug)]
pub struct Node {
    /// The array produced at (or input by) this node.
    pub tensor: Tensor,
    /// Producer description.
    pub kind: NodeKind,
    /// Parent link (`None` for the root), maintained by the arena.
    pub parent: Option<NodeId>,
}

impl Node {
    /// The loop indices of the node's producing loop nest: its array
    /// dimensions plus its summation indices (the paper's `v.indices`).
    pub fn loop_indices(&self) -> IndexSet {
        let dims = self.tensor.dim_set();
        match &self.kind {
            NodeKind::Leaf => dims,
            NodeKind::Contract { sum, .. } => dims.union(sum),
            NodeKind::Reduce { sum, .. } => {
                let mut s = dims;
                s.insert(*sum);
                s
            }
        }
    }

    /// True for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf)
    }
}

/// The `(I, J, K)` index groups of a generalized matrix multiplication
/// `C(I,J) += A(I,K)·B(K,J)` (paper §3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContractionGroups {
    /// Result indices coming from the left operand.
    pub i: IndexSet,
    /// Result indices coming from the right operand.
    pub j: IndexSet,
    /// Summation indices (appear in both operands, not in the result).
    pub k: IndexSet,
}

/// An arena-allocated binary expression tree.
#[derive(Clone, Debug)]
pub struct ExprTree {
    /// The index space the tree's tensors live in.
    pub space: IndexSpace,
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl ExprTree {
    /// An empty tree over `space`.
    pub fn new(space: IndexSpace) -> Self {
        Self { space, nodes: Vec::new(), root: None }
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(node);
        id
    }

    /// Add an input-array leaf.
    pub fn add_leaf(&mut self, tensor: Tensor) -> NodeId {
        self.push(Node { tensor, kind: NodeKind::Leaf, parent: None })
    }

    /// Add `result = Σ_sum left × right`, validating well-formedness:
    /// `(IX ∪ IY) ∖ sum = ITr` and `sum ⊆ IX ∪ IY` and `sum ∩ ITr = ∅`.
    pub fn add_contract(
        &mut self,
        result: Tensor,
        sum: IndexSet,
        left: NodeId,
        right: NodeId,
    ) -> Result<NodeId, ExprError> {
        let ix = self.node(left).tensor.dim_set();
        let iy = self.node(right).tensor.dim_set();
        let itr = result.dim_set();
        let rhs = ix.union(&iy);
        if !sum.is_subset(&rhs) {
            return Err(ExprError::Malformed(format!(
                "summation indices {{{}}} of `{}` do not all appear on the right-hand side",
                self.space.render(sum.as_slice()),
                result.name
            )));
        }
        if !sum.is_disjoint(&itr) {
            return Err(ExprError::Malformed(format!(
                "summation index of `{}` also appears in its result dimensions",
                result.name
            )));
        }
        if rhs.difference(&sum) != itr {
            return Err(ExprError::Malformed(format!(
                "`{}({})`: result dimensions must equal the non-summed \
                 right-hand-side indices {{{}}}",
                result.name,
                self.space.render(&result.dims),
                self.space.render(rhs.difference(&sum).as_slice()),
            )));
        }
        for &c in &[left, right] {
            if self.node(c).parent.is_some() {
                return Err(ExprError::Malformed(format!(
                    "node `{}` already has a parent; trees may not share sub-expressions",
                    self.node(c).tensor.name
                )));
            }
        }
        let id = self.push(Node {
            tensor: result,
            kind: NodeKind::Contract { sum, left, right },
            parent: None,
        });
        self.nodes[left.as_usize()].parent = Some(id);
        self.nodes[right.as_usize()].parent = Some(id);
        Ok(id)
    }

    /// Add a pure summation node `result = Σ_sum child`.
    pub fn add_reduce(
        &mut self,
        result: Tensor,
        sum: IndexId,
        child: NodeId,
    ) -> Result<NodeId, ExprError> {
        let ix = self.node(child).tensor.dim_set();
        let itr = result.dim_set();
        if !ix.contains(sum) {
            return Err(ExprError::Malformed(format!(
                "summation index `{}` of `{}` is not a dimension of the operand",
                self.space.name(sum),
                result.name
            )));
        }
        let mut expect = ix;
        expect.remove(sum);
        if expect != itr {
            return Err(ExprError::Malformed(format!(
                "`{}`: result dimensions must be the operand dimensions minus `{}`",
                result.name,
                self.space.name(sum)
            )));
        }
        if self.node(child).parent.is_some() {
            return Err(ExprError::Malformed(format!(
                "node `{}` already has a parent",
                self.node(child).tensor.name
            )));
        }
        let id =
            self.push(Node { tensor: result, kind: NodeKind::Reduce { sum, child }, parent: None });
        self.nodes[child.as_usize()].parent = Some(id);
        Ok(id)
    }

    /// Declare which node is the final result. Must be parentless.
    pub fn set_root(&mut self, id: NodeId) {
        assert!(self.node(id).parent.is_none(), "root must not have a parent");
        self.root = Some(id);
    }

    /// The final-result node.
    ///
    /// # Panics
    /// Panics if no root was set.
    pub fn root(&self) -> NodeId {
        self.root.expect("expression tree has no root")
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.as_usize()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids in arena order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Children of a node (0, 1, or 2 of them).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        match &self.node(id).kind {
            NodeKind::Leaf => vec![],
            NodeKind::Contract { left, right, .. } => vec![*left, *right],
            NodeKind::Reduce { child, .. } => vec![*child],
        }
    }

    /// Post-order traversal of the subtree under the root (children before
    /// parents) — the order the bottom-up dynamic programming wants.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root(), false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                out.push(id);
            } else {
                stack.push((id, true));
                for c in self.children(id) {
                    stack.push((c, false));
                }
            }
        }
        out
    }

    /// Find a node producing the array named `name`.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.ids().find(|&id| self.node(id).tensor.name == name)
    }

    /// Decompose a contraction node into the `(I, J, K)` groups of §3.1,
    /// checking the *tensor contraction property*: every result index
    /// appears in exactly one operand, every summation index in both.
    /// Returns an error for non-contraction nodes (leaves, reductions) and
    /// for multiplication nodes that violate the property (e.g. the
    /// element-wise `T3 = T1 × T2` of Fig. 1).
    pub fn contraction_groups(&self, id: NodeId) -> Result<ContractionGroups, ExprError> {
        let node = self.node(id);
        let NodeKind::Contract { sum, left, right } = &node.kind else {
            return Err(ExprError::NotAContraction(node.tensor.name.clone()));
        };
        let ix = self.node(*left).tensor.dim_set();
        let iy = self.node(*right).tensor.dim_set();
        let shared = ix.intersection(&iy);
        if &shared != sum {
            return Err(ExprError::NotAContraction(format!(
                "`{}`: operands share {{{}}} but the summation set is {{{}}}",
                node.tensor.name,
                self.space.render(shared.as_slice()),
                self.space.render(sum.as_slice()),
            )));
        }
        Ok(ContractionGroups { i: ix.difference(sum), j: iy.difference(sum), k: sum.clone() })
    }

    /// True if every internal node is a proper generalized matrix
    /// multiplication (so the whole tree is Cannon-executable).
    pub fn is_contraction_tree(&self) -> bool {
        self.postorder().iter().all(|&id| match self.node(id).kind {
            NodeKind::Leaf => true,
            NodeKind::Reduce { .. } => false,
            NodeKind::Contract { .. } => self.contraction_groups(id).is_ok(),
        })
    }

    /// Floating point operations to evaluate node `id` (2 flops per
    /// multiply-add of a contraction with a non-empty summation set; 1 flop
    /// per point otherwise).
    pub fn node_op_count(&self, id: NodeId) -> u128 {
        let node = self.node(id);
        match &node.kind {
            NodeKind::Leaf => 0,
            NodeKind::Contract { sum, left, right } => {
                let ix = self.node(*left).tensor.dim_set();
                let iy = self.node(*right).tensor.dim_set();
                let all = ix.union(&iy);
                let vol = self.space.volume(all.as_slice());
                if sum.is_empty() {
                    vol
                } else {
                    2 * vol
                }
            }
            NodeKind::Reduce { child, .. } => {
                self.space.volume(self.node(*child).tensor.dims.as_slice())
            }
        }
    }

    /// Total flops for the subtree under the root.
    pub fn total_op_count(&self) -> u128 {
        self.postorder().iter().map(|&id| self.node_op_count(id)).sum()
    }

    /// Sum of intermediate + result array sizes (words), ignoring inputs —
    /// the unfused memory requirement for temporaries.
    pub fn intermediate_words(&self) -> u128 {
        self.postorder()
            .iter()
            .filter(|&&id| !self.node(id).is_leaf())
            .map(|&id| self.node(id).tensor.num_elements(&self.space))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's Fig. 2(a) tree:
    /// T1(b,c,d,f) = Σ_el B(b,e,f,l) D(c,d,e,l);
    /// T2(b,c,j,k) = Σ_df T1 C(d,f,j,k);
    /// S(a,b,i,j)  = Σ_ck T2 A(a,c,i,k)
    fn fig2_tree() -> ExprTree {
        let mut sp = IndexSpace::new();
        let n480 = ["a", "b", "c", "d"].map(|n| sp.declare(n, 480));
        let n64 = ["e", "f"].map(|n| sp.declare(n, 64));
        let n32 = ["i", "j", "k", "l"].map(|n| sp.declare(n, 32));
        let [a, b, c, d] = n480;
        let [e, f] = n64;
        let [i, j, k, l] = n32;

        let mut t = ExprTree::new(sp);
        let nb = t.add_leaf(Tensor::new("B", vec![b, e, f, l]));
        let nd = t.add_leaf(Tensor::new("D", vec![c, d, e, l]));
        let nc = t.add_leaf(Tensor::new("C", vec![d, f, j, k]));
        let na = t.add_leaf(Tensor::new("A", vec![a, c, i, k]));
        let t1 = t
            .add_contract(Tensor::new("T1", vec![b, c, d, f]), IndexSet::from_iter([e, l]), nb, nd)
            .unwrap();
        let t2 = t
            .add_contract(Tensor::new("T2", vec![b, c, j, k]), IndexSet::from_iter([d, f]), t1, nc)
            .unwrap();
        let s = t
            .add_contract(Tensor::new("S", vec![a, b, i, j]), IndexSet::from_iter([c, k]), t2, na)
            .unwrap();
        t.set_root(s);
        t
    }

    #[test]
    fn fig2_tree_is_well_formed_contraction_tree() {
        let t = fig2_tree();
        assert!(t.is_contraction_tree());
        assert_eq!(t.len(), 7);
        assert_eq!(t.postorder().len(), 7);
        // Post-order puts the root last.
        assert_eq!(*t.postorder().last().unwrap(), t.root());
    }

    #[test]
    fn fig2_groups() {
        let t = fig2_tree();
        let t1 = t.find("T1").unwrap();
        let g = t.contraction_groups(t1).unwrap();
        let sp = &t.space;
        assert_eq!(sp.render(g.i.as_slice()), "b,f");
        assert_eq!(sp.render(g.j.as_slice()), "c,d");
        assert_eq!(sp.render(g.k.as_slice()), "e,l");
    }

    #[test]
    fn fig2_total_ops_is_6n6_scale() {
        let t = fig2_tree();
        // Step flop counts from §2: 2·Nb·Nc·Nd·Nf·Ne·Nl + 2·Nb·Nc·Nj·Nk·Nd·Nf
        // + 2·Na·Nb·Ni·Nj·Nc·Nk.
        let n480 = 480u128;
        let n64 = 64u128;
        let n32 = 32u128;
        let expect = 2 * n480.pow(3) * n64 * n64 * n32
            + 2 * n480.pow(3) * n64 * n32 * n32
            + 2 * n480.pow(3) * n32.pow(3);
        assert_eq!(t.total_op_count(), expect);
    }

    #[test]
    fn intermediates_dominated_by_t1() {
        let t = fig2_tree();
        let t1_words = 480u128 * 480 * 480 * 64;
        assert!(t.intermediate_words() > t1_words);
        assert!(t.intermediate_words() < 2 * t1_words);
    }

    #[test]
    fn malformed_contract_rejected() {
        let mut sp = IndexSpace::new();
        let a = sp.declare("a", 4);
        let b = sp.declare("b", 4);
        let c = sp.declare("c", 4);
        let mut t = ExprTree::new(sp);
        let x = t.add_leaf(Tensor::new("X", vec![a, b]));
        let y = t.add_leaf(Tensor::new("Y", vec![b, c]));
        // Result keeps the summation index b -> malformed.
        let r = t.add_contract(Tensor::new("R", vec![a, b, c]), IndexSet::from_iter([b]), x, y);
        assert!(r.is_err());
        // Result missing index c -> malformed.
        let r2 = t.add_contract(Tensor::new("R", vec![a]), IndexSet::from_iter([b]), x, y);
        assert!(r2.is_err());
    }

    #[test]
    fn sharing_rejected() {
        let mut sp = IndexSpace::new();
        let a = sp.declare("a", 4);
        let b = sp.declare("b", 4);
        let c = sp.declare("c", 4);
        let d = sp.declare("d", 4);
        let mut t = ExprTree::new(sp);
        let x = t.add_leaf(Tensor::new("X", vec![a, b]));
        let y = t.add_leaf(Tensor::new("Y", vec![b, c]));
        let z = t.add_leaf(Tensor::new("Z", vec![b, d]));
        t.add_contract(Tensor::new("R", vec![a, c]), IndexSet::from_iter([b]), x, y).unwrap();
        // X is already consumed.
        assert!(t
            .add_contract(Tensor::new("R2", vec![a, d]), IndexSet::from_iter([b]), x, z)
            .is_err());
    }

    #[test]
    fn reduce_node_round_trip() {
        let mut sp = IndexSpace::new();
        let i = sp.declare("i", 10);
        let j = sp.declare("j", 20);
        let mut t = ExprTree::new(sp);
        let a = t.add_leaf(Tensor::new("A", vec![i, j]));
        let r = t.add_reduce(Tensor::new("T", vec![j]), i, a).unwrap();
        t.set_root(r);
        assert!(!t.is_contraction_tree());
        assert_eq!(t.node_op_count(r), 200);
        match &t.node(r).kind {
            NodeKind::Reduce { sum, .. } => assert_eq!(*sum, i),
            _ => panic!("expected reduce"),
        }
    }

    #[test]
    fn reduce_validation() {
        let mut sp = IndexSpace::new();
        let i = sp.declare("i", 10);
        let j = sp.declare("j", 20);
        let mut t = ExprTree::new(sp);
        let a = t.add_leaf(Tensor::new("A", vec![j]));
        // i is not a dimension of A.
        assert!(t.add_reduce(Tensor::new("T", vec![j]), i, a).is_err());
    }

    #[test]
    fn loop_indices_include_sum() {
        let t = fig2_tree();
        let t1 = t.find("T1").unwrap();
        let li = t.node(t1).loop_indices();
        assert_eq!(li.len(), 6); // b,c,d,f + e,l
    }
}
