//! # tce-expr — tensor contraction expression IR
//!
//! The representation layer of a reproduction of *"Global Communication
//! Optimization for Tensor Contraction Expressions under Memory
//! Constraints"* (Cociorva et al., IPPS 2003).
//!
//! The class of computations: a final multi-dimensional array computed as a
//! summation over products of input arrays, decomposed (after operation
//! minimization) into a *formula sequence* — each formula a multiplication,
//! a summation, or a combined contraction producing an intermediate — which
//! is equivalently a binary *expression tree* whose internal nodes are the
//! contractions.
//!
//! This crate provides:
//! * [`IndexSpace`] / [`IndexId`] / [`IndexSet`] — index variables & extents;
//! * [`Tensor`] — named arrays over index variables;
//! * [`FormulaSequence`] (Fig. 1a / 2a) and [`ExprTree`] (Fig. 1b), with
//!   well-formedness validation and the `(I,J,K)` contraction-group
//!   decomposition of §3.1;
//! * a [`parser`] for a small text notation, including raw
//!   sum-of-products terms destined for operation minimization;
//! * [`printer`]s reproducing the paper's Fig. 2 renderings;
//! * [`examples`] — the paper's Fig. 1 and §4 workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::panic))]

pub mod canon;
mod error;
pub mod examples;
mod formula;
mod index;
pub mod parser;
pub mod printer;
mod tensor;
mod tree;

pub use canon::{canonical_form, fnv128, subtree_form, subtree_forms, CanonicalForm, Fnv128};
pub use error::ExprError;
pub use formula::{Formula, FormulaSequence};
pub use index::{IndexId, IndexSet, IndexSpace};
pub use parser::{parse, Program, Statement, SumOfProducts};
pub use tensor::Tensor;
pub use tree::{ContractionGroups, ExprTree, Node, NodeId, NodeKind};
