//! Error type for expression construction and parsing.

use std::fmt;

/// Errors produced while building, validating, or parsing expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprError {
    /// A formula violates well-formedness (§2 of the paper).
    Malformed(String),
    /// A node was asked for its `(I,J,K)` groups but is not a generalized
    /// matrix multiplication.
    NotAContraction(String),
    /// A name was referenced before being defined.
    Undefined(String),
    /// A name was defined twice.
    Redefined(String),
    /// Syntax error while parsing, with a source position.
    Parse {
        /// 1-based source line of the error.
        line: usize,
        /// 1-based column (character offset within the line) of the token
        /// where the error was detected; 0 when unknown (e.g. empty input).
        col: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Malformed(m) => write!(f, "malformed formula: {m}"),
            ExprError::NotAContraction(m) => {
                write!(f, "not a generalized matrix multiplication: {m}")
            }
            ExprError::Undefined(n) => write!(f, "undefined array `{n}`"),
            ExprError::Redefined(n) => write!(f, "array `{n}` defined more than once"),
            ExprError::Parse { line, col, msg } => {
                write!(f, "parse error on line {line}, column {col}: {msg}")
            }
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ExprError::Parse { line: 3, col: 7, msg: "expected `]`".into() };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("column 7"));
        assert!(ExprError::Undefined("Q".into()).to_string().contains("`Q`"));
        assert!(ExprError::Redefined("T1".into()).to_string().contains("T1"));
        assert!(ExprError::Malformed("x".into()).to_string().contains("malformed"));
        assert!(ExprError::NotAContraction("y".into())
            .to_string()
            .contains("matrix multiplication"));
    }
}
