//! Index variables and index spaces.
//!
//! Every loop/array dimension in a tensor contraction expression is named by
//! an *index variable* (the paper's `a`–`l`). An [`IndexSpace`] interns the
//! variable names of one expression and records the *extent* (range `N_i`)
//! of each. All other layers refer to indices through the copyable
//! [`IndexId`] handle, which keeps index sets cheap (bitsets / small vecs of
//! `u32`) in the inner loops of the optimizer.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Handle to an index variable interned in an [`IndexSpace`].
///
/// Ordering follows declaration order, which gives every algorithm in the
/// workspace a deterministic canonical order of indices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IndexId(pub u32);

impl IndexId {
    /// Position of this index in its space's declaration order.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ix{}", self.0)
    }
}

/// The set of index variables of one expression, with their extents.
///
/// ```
/// use tce_expr::IndexSpace;
/// let mut sp = IndexSpace::new();
/// let a = sp.declare("a", 480);
/// let e = sp.declare("e", 64);
/// assert_eq!(sp.extent(a), 480);
/// assert_eq!(sp.name(e), "e");
/// assert_eq!(sp.lookup("a"), Some(a));
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IndexSpace {
    names: Vec<String>,
    extents: Vec<u64>,
    #[serde(skip)]
    by_name: HashMap<String, IndexId>,
}

impl IndexSpace {
    /// An empty index space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a new index variable with the given extent, or return the
    /// existing handle if `name` was already declared *with the same extent*.
    ///
    /// # Panics
    /// Panics if `name` was declared before with a different extent, or if
    /// `extent == 0` — both are programming errors in expression
    /// construction that would silently corrupt every cost model downstream.
    pub fn declare(&mut self, name: &str, extent: u64) -> IndexId {
        assert!(extent > 0, "index `{name}` declared with zero extent");
        if let Some(&id) = self.by_name.get(name) {
            assert_eq!(
                self.extents[id.as_usize()],
                extent,
                "index `{name}` re-declared with a different extent"
            );
            return id;
        }
        let id = IndexId(u32::try_from(self.names.len()).expect("too many indices"));
        self.names.push(name.to_owned());
        self.extents.push(extent);
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Find a declared index by name.
    pub fn lookup(&self, name: &str) -> Option<IndexId> {
        if self.by_name.len() != self.names.len() {
            // Deserialized spaces arrive without the lookup map; fall back to
            // a scan (spaces are tiny — a dozen indices at most in practice).
            return self.names.iter().position(|n| n == name).map(|i| IndexId(i as u32));
        }
        self.by_name.get(name).copied()
    }

    /// Extent (`N_i`) of an index.
    #[inline]
    pub fn extent(&self, id: IndexId) -> u64 {
        self.extents[id.as_usize()]
    }

    /// Name of an index.
    #[inline]
    pub fn name(&self, id: IndexId) -> &str {
        &self.names[id.as_usize()]
    }

    /// Number of declared indices.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no indices are declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All declared indices in declaration order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = IndexId> + '_ {
        (0..self.names.len() as u32).map(IndexId)
    }

    /// Product of extents over a set of indices, as a `u128` so that the
    /// 10-index `4N^10` examples of the paper cannot overflow.
    pub fn volume(&self, ids: &[IndexId]) -> u128 {
        ids.iter().map(|&i| self.extent(i) as u128).product()
    }

    /// Render a set of indices as `a,b,c` for diagnostics and tables.
    pub fn render(&self, ids: &[IndexId]) -> String {
        let mut s = String::new();
        for (n, &i) in ids.iter().enumerate() {
            if n > 0 {
                s.push(',');
            }
            s.push_str(self.name(i));
        }
        s
    }
}

/// A sorted, deduplicated set of indices. Thin wrapper over `Vec<IndexId>`
/// kept sorted; the sets involved are tiny (≤ ~12 indices) so a sorted vec
/// beats hash sets both in speed and in determinism.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IndexSet(Vec<IndexId>);

impl IndexSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator, sorting and deduplicating (also available
    /// through the `FromIterator` impl; kept as an inherent method for
    /// call-site clarity).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = IndexId>>(it: I) -> Self {
        let mut v: Vec<IndexId> = it.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Self(v)
    }

    /// Membership test (binary search; sets are tiny).
    #[inline]
    pub fn contains(&self, id: IndexId) -> bool {
        self.0.binary_search(&id).is_ok()
    }

    /// Insert one index, keeping order.
    pub fn insert(&mut self, id: IndexId) {
        if let Err(pos) = self.0.binary_search(&id) {
            self.0.insert(pos, id);
        }
    }

    /// Remove one index if present.
    pub fn remove(&mut self, id: IndexId) {
        if let Ok(pos) = self.0.binary_search(&id) {
            self.0.remove(pos);
        }
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        Self::from_iter(self.0.iter().chain(other.0.iter()).copied())
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Self) -> Self {
        Self(self.0.iter().copied().filter(|&i| other.contains(i)).collect())
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Self) -> Self {
        Self(self.0.iter().copied().filter(|&i| !other.contains(i)).collect())
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.0.iter().all(|&i| other.contains(i))
    }

    /// True if the sets share no element.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.0.iter().all(|&i| !other.contains(i))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate in canonical (declaration) order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = IndexId> + '_ {
        self.0.iter().copied()
    }

    /// Borrow the sorted contents.
    pub fn as_slice(&self) -> &[IndexId] {
        &self.0
    }
}

impl fmt::Debug for IndexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.0.iter()).finish()
    }
}

impl FromIterator<IndexId> for IndexSet {
    fn from_iter<T: IntoIterator<Item = IndexId>>(iter: T) -> Self {
        Self::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a IndexSet {
    type Item = IndexId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, IndexId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (IndexSpace, IndexId, IndexId, IndexId) {
        let mut sp = IndexSpace::new();
        let a = sp.declare("a", 4);
        let b = sp.declare("b", 5);
        let c = sp.declare("c", 6);
        (sp, a, b, c)
    }

    #[test]
    fn declare_and_lookup() {
        let (sp, a, b, _) = abc();
        assert_eq!(sp.lookup("a"), Some(a));
        assert_eq!(sp.lookup("b"), Some(b));
        assert_eq!(sp.lookup("zzz"), None);
        assert_eq!(sp.extent(a), 4);
        assert_eq!(sp.name(b), "b");
        assert_eq!(sp.len(), 3);
    }

    #[test]
    fn redeclare_same_extent_is_idempotent() {
        let mut sp = IndexSpace::new();
        let a1 = sp.declare("a", 7);
        let a2 = sp.declare("a", 7);
        assert_eq!(a1, a2);
        assert_eq!(sp.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different extent")]
    fn redeclare_different_extent_panics() {
        let mut sp = IndexSpace::new();
        sp.declare("a", 7);
        sp.declare("a", 8);
    }

    #[test]
    #[should_panic(expected = "zero extent")]
    fn zero_extent_panics() {
        let mut sp = IndexSpace::new();
        sp.declare("a", 0);
    }

    #[test]
    fn volume_is_product_of_extents() {
        let (sp, a, b, c) = abc();
        assert_eq!(sp.volume(&[a, b, c]), 4 * 5 * 6);
        assert_eq!(sp.volume(&[]), 1);
    }

    #[test]
    fn volume_handles_ten_large_indices() {
        let mut sp = IndexSpace::new();
        let ids: Vec<_> = (0..10).map(|i| sp.declare(&format!("i{i}"), 1000)).collect();
        assert_eq!(sp.volume(&ids), 10u128.pow(30));
    }

    #[test]
    fn index_set_ops() {
        let (_, a, b, c) = abc();
        let s1 = IndexSet::from_iter([b, a, b]);
        assert_eq!(s1.len(), 2);
        assert!(s1.contains(a) && s1.contains(b) && !s1.contains(c));
        let s2 = IndexSet::from_iter([b, c]);
        assert_eq!(s1.union(&s2).len(), 3);
        assert_eq!(s1.intersection(&s2).as_slice(), &[b]);
        assert_eq!(s1.difference(&s2).as_slice(), &[a]);
        assert!(s1.intersection(&s2).is_subset(&s1));
        assert!(!s1.is_disjoint(&s2));
        assert!(IndexSet::new().is_disjoint(&s1));
        assert!(IndexSet::new().is_subset(&s2));
    }

    #[test]
    fn index_set_insert_remove_keep_order() {
        let (_, a, b, c) = abc();
        let mut s = IndexSet::new();
        s.insert(c);
        s.insert(a);
        s.insert(b);
        s.insert(a);
        assert_eq!(s.as_slice(), &[a, b, c]);
        s.remove(b);
        assert_eq!(s.as_slice(), &[a, c]);
        s.remove(b); // removing absent element is a no-op
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn render_names() {
        let (sp, a, b, c) = abc();
        assert_eq!(sp.render(&[a, b, c]), "a,b,c");
        assert_eq!(sp.render(&[]), "");
    }
}
