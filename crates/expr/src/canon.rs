//! Canonical forms and stable content hashing for expression trees.
//!
//! Two trees that differ only by a renaming of their index variables — or,
//! for the commutative form, also by swapping the operands of contraction
//! nodes — describe the same optimization problem: every cost in the model
//! is a function of index *extents* and tree *structure*, never of names.
//! This module computes a canonical encoding that is invariant under
//! exactly those transformations, plus the rename bijection needed to map
//! cached results back to source names:
//!
//! * [`subtree_form`] / [`subtree_forms`] — the **strict** per-subtree form
//!   (rename-invariant, operand order preserved), keyed on by the in-run
//!   level-1 frontier reuse in `tce-core`;
//! * [`canonical_form`] — the **commutative** whole-tree normal form
//!   (rename- and swap-invariant), keyed on by the on-disk level-2 plan
//!   cache;
//! * [`Fnv128`] — the 128-bit FNV-1a hasher both forms (and the cache
//!   layer's key digests) share.
//!
//! # Encoding
//!
//! A form is a token stream over a postorder walk of the (sub)tree. Index
//! variables are renamed De Bruijn-style to their *first-occurrence number*
//! in the walk: every index of a well-formed tree first occurs in some
//! leaf's declared dimension list, and leaves are visited in a structurally
//! determined order, so the numbering is independent of source `IndexId`s.
//! Extents are emitted with each leaf dimension, so two isomorphic trees
//! with different extents never collide. Internal nodes emit their
//! summation and result-dimension sets as *sorted canonical numbers*,
//! which removes the residual source-id ordering inside `IndexSet`s.
//!
//! For the commutative form, the operand order of every contraction node is
//! itself part of the search space: the canonical stream is the
//! lexicographically smallest stream over all child-order assignments.
//! Child orders cannot be fixed locally — two operand subtrees can be
//! structurally identical yet share summation indices with the rest of the
//! tree, so the choice leaks into the global numbering — hence the exact
//! definition enumerates assignments (trees have a handful of contraction
//! nodes; see [`MAX_COMMUTATIVE_NODES`]).

use std::collections::HashMap;

use crate::index::IndexId;
use crate::tree::{ExprTree, NodeId, NodeKind};

/// 128-bit FNV-1a. Not cryptographic — collisions are theoretically
/// possible — which is why every consumer of these hashes re-validates
/// what it loads (the level-1 reuse replays only after a structural
/// bijection check; the level-2 cache re-runs the full static checker).
#[derive(Clone, Copy, Debug)]
pub struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: Self::OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u128` (little-endian).
    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a length-prefixed string (so `("ab","c")` and `("a","bc")`
    /// hash differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Hash a byte slice in one call.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    h.write(bytes);
    h.finish()
}

// Token tags, placed at the top of the `u64` range where no extent or
// canonical index number can reach them (a 2^63 extent would overflow
// every volume computation long before it got here).
const TAG_LEAF: u64 = u64::MAX;
const TAG_CONTRACT: u64 = u64::MAX - 1;
const TAG_REDUCE: u64 = u64::MAX - 2;

/// Above this many contraction nodes the commutative form stops
/// enumerating child-order assignments (2^n streams) and falls back to the
/// declared operand order: the hash is then still rename-invariant but no
/// longer swap-invariant, which only costs cache hit rate, never
/// correctness — every cache layer re-validates what it loads.
pub const MAX_COMMUTATIVE_NODES: usize = 12;

/// The strict (operand-order-preserving) canonical form of one subtree.
#[derive(Clone, Debug)]
pub struct SubtreeForm {
    /// Rename-invariant structural hash of the subtree, extents included.
    pub hash: u128,
    /// The rename bijection: `index_order[n]` is the source [`IndexId`]
    /// that canonical number `n` stands for.
    pub index_order: Vec<IndexId>,
    /// The node bijection: subtree nodes in walk (postorder) order. Two
    /// subtrees with equal `hash` have the same shape, so position `p` in
    /// one corresponds to position `p` in the other.
    pub nodes: Vec<NodeId>,
}

impl SubtreeForm {
    /// Whether the rename bijection from `self` onto `other` preserves the
    /// relative [`IndexId`] order (`argsort` equality). Monotone bijections
    /// are the ones under which every order-sensitive enumeration in the
    /// optimizer (sorted index sets, prefix candidate order, distribution
    /// enumeration) maps 1:1, making frontier replay bit-exact.
    pub fn monotone_bijection_to(&self, other: &SubtreeForm) -> bool {
        let n = self.index_order.len();
        if other.index_order.len() != n {
            return false;
        }
        let rank = |order: &[IndexId]| -> Vec<u32> {
            let mut sorted: Vec<usize> = (0..order.len()).collect();
            sorted.sort_by_key(|&i| order[i]);
            let mut r = vec![0u32; order.len()];
            for (rk, &i) in sorted.iter().enumerate() {
                r[i] = rk as u32;
            }
            r
        };
        rank(&self.index_order) == rank(&other.index_order)
    }
}

/// Token-stream emitter shared by both forms.
struct Emitter<'a> {
    tree: &'a ExprTree,
    /// Contraction nodes whose children are emitted right-then-left.
    swapped: &'a HashMap<NodeId, bool>,
    toks: Vec<u64>,
    num: HashMap<IndexId, u32>,
    index_order: Vec<IndexId>,
    node_order: Vec<NodeId>,
}

impl<'a> Emitter<'a> {
    fn new(tree: &'a ExprTree, swapped: &'a HashMap<NodeId, bool>) -> Self {
        Self {
            tree,
            swapped,
            toks: Vec::new(),
            num: HashMap::new(),
            index_order: Vec::new(),
            node_order: Vec::new(),
        }
    }

    fn canon(&mut self, id: IndexId) -> u64 {
        match self.num.get(&id) {
            Some(&n) => n as u64,
            None => {
                let n = self.index_order.len() as u32;
                self.num.insert(id, n);
                self.index_order.push(id);
                n as u64
            }
        }
    }

    /// Emit an index set as its sorted canonical numbers. Every member has
    /// already been numbered (indices first occur at leaves, and leaves
    /// are emitted before their ancestors).
    fn emit_set(&mut self, ids: impl Iterator<Item = IndexId>) {
        let mut nums: Vec<u64> = ids.map(|i| self.canon(i)).collect();
        nums.sort_unstable();
        self.toks.push(nums.len() as u64);
        self.toks.extend(nums);
    }

    fn walk(&mut self, v: NodeId) {
        let node = self.tree.node(v);
        match &node.kind {
            NodeKind::Leaf => {
                self.node_order.push(v);
                self.toks.push(TAG_LEAF);
                self.toks.push(node.tensor.dims.len() as u64);
                for &d in &node.tensor.dims {
                    let n = self.canon(d);
                    self.toks.push(n);
                    self.toks.push(self.tree.space.extent(d));
                }
            }
            NodeKind::Contract { sum, left, right } => {
                let (sum, left, right) = (sum.clone(), *left, *right);
                let (a, b) = if self.swapped.get(&v).copied().unwrap_or(false) {
                    (right, left)
                } else {
                    (left, right)
                };
                self.walk(a);
                self.walk(b);
                self.node_order.push(v);
                self.toks.push(TAG_CONTRACT);
                self.emit_set(sum.iter());
                self.emit_set(node.tensor.dim_set().iter());
            }
            NodeKind::Reduce { sum, child } => {
                let (sum, child) = (*sum, *child);
                self.walk(child);
                self.node_order.push(v);
                self.toks.push(TAG_REDUCE);
                let n = self.canon(sum);
                self.toks.push(n);
                self.emit_set(self.tree.node(v).tensor.dim_set().iter());
            }
        }
    }
}

fn hash_tokens(toks: &[u64]) -> u128 {
    let mut h = Fnv128::new();
    for &t in toks {
        h.write_u64(t);
    }
    h.finish()
}

/// The strict canonical form of the subtree rooted at `v`: invariant under
/// index renaming, *not* under operand swaps (the level-1 reuse wants the
/// exact enumeration order preserved).
pub fn subtree_form(tree: &ExprTree, v: NodeId) -> SubtreeForm {
    let no_swaps = HashMap::new();
    let mut em = Emitter::new(tree, &no_swaps);
    em.walk(v);
    SubtreeForm { hash: hash_tokens(&em.toks), index_order: em.index_order, nodes: em.node_order }
}

/// [`subtree_form`] for every internal node of the tree (leaves have no
/// frontier to reuse).
pub fn subtree_forms(tree: &ExprTree) -> HashMap<NodeId, SubtreeForm> {
    tree.postorder()
        .into_iter()
        .filter(|&id| !tree.node(id).is_leaf())
        .map(|id| (id, subtree_form(tree, id)))
        .collect()
}

/// The commutative whole-tree normal form: invariant under index renaming
/// and under swapping the operands of any contraction node.
#[derive(Clone, Debug)]
pub struct CanonicalForm {
    /// The canonical content hash — the level-2 plan-cache key component.
    pub hash: u128,
    /// `index_order[n]` = source [`IndexId`] of canonical index number `n`.
    pub index_order: Vec<IndexId>,
    /// `node_order[p]` = source [`NodeId`] at canonical node position `p`
    /// (the chosen walk's postorder).
    pub node_order: Vec<NodeId>,
}

impl CanonicalForm {
    /// Canonical position of a source node (`None` for nodes outside the
    /// walk, which cannot happen for nodes reachable from the root).
    pub fn position_of(&self, id: NodeId) -> Option<u32> {
        self.node_order.iter().position(|&n| n == id).map(|p| p as u32)
    }

    /// Canonical number of a source index.
    pub fn number_of(&self, id: IndexId) -> Option<u32> {
        self.index_order.iter().position(|&i| i == id).map(|n| n as u32)
    }
}

/// Compute the commutative canonical form of the whole tree.
pub fn canonical_form(tree: &ExprTree) -> CanonicalForm {
    let contracts: Vec<NodeId> = tree
        .postorder()
        .into_iter()
        .filter(|&id| matches!(tree.node(id).kind, NodeKind::Contract { .. }))
        .collect();
    let root = tree.root();
    if contracts.len() > MAX_COMMUTATIVE_NODES {
        // Degenerate guard: keep declared operand order (rename-invariant
        // only). See `MAX_COMMUTATIVE_NODES`.
        let no_swaps = HashMap::new();
        let mut em = Emitter::new(tree, &no_swaps);
        em.walk(root);
        return CanonicalForm {
            hash: hash_tokens(&em.toks),
            index_order: em.index_order,
            node_order: em.node_order,
        };
    }
    let mut best: Option<(Vec<u64>, Vec<IndexId>, Vec<NodeId>)> = None;
    for mask in 0u32..(1u32 << contracts.len()) {
        let swapped: HashMap<NodeId, bool> =
            contracts.iter().enumerate().map(|(i, &n)| (n, mask & (1 << i) != 0)).collect();
        let mut em = Emitter::new(tree, &swapped);
        em.walk(root);
        let better = match &best {
            None => true,
            Some((toks, _, _)) => em.toks < *toks,
        };
        if better {
            best = Some((em.toks, em.index_order, em.node_order));
        }
    }
    // `best` is always set: the loop runs at least once (mask 0).
    let Some((toks, index_order, node_order)) = best else {
        // Unreachable; kept as a graceful degenerate instead of a panic.
        return CanonicalForm { hash: 0, index_order: Vec::new(), node_order: Vec::new() };
    };
    CanonicalForm { hash: hash_tokens(&toks), index_order, node_order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexSet, IndexSpace};
    use crate::tensor::Tensor;

    /// `S(a,i) = Σ_c ( Σ_b A(a,b) B(b,c) ) C(c,i)` with renamable names.
    fn chain(names: [&str; 5], extents: [u64; 4], swap_top: bool) -> ExprTree {
        let mut sp = IndexSpace::new();
        let ids: Vec<_> = names[..4].iter().zip(extents).map(|(n, e)| sp.declare(n, e)).collect();
        let (a, b, c, i) = (ids[0], ids[1], ids[2], ids[3]);
        let mut t = ExprTree::new(sp);
        let na = t.add_leaf(Tensor::new("A", vec![a, b]));
        let nb = t.add_leaf(Tensor::new("B", vec![b, c]));
        let nc = t.add_leaf(Tensor::new("C", vec![c, i]));
        let t1 = t
            .add_contract(Tensor::new("T1", vec![a, c]), IndexSet::from_iter([b]), na, nb)
            .unwrap();
        let s = if swap_top {
            t.add_contract(Tensor::new(names[4], vec![a, i]), IndexSet::from_iter([c]), nc, t1)
                .unwrap()
        } else {
            t.add_contract(Tensor::new(names[4], vec![a, i]), IndexSet::from_iter([c]), t1, nc)
                .unwrap()
        };
        t.set_root(s);
        t
    }

    #[test]
    fn fnv128_matches_reference_vector() {
        // FNV-1a 128 of the empty input is the offset basis.
        assert_eq!(fnv128(b""), 0x6c62272e07bb014262b821756295c58d);
        // One byte must both xor and multiply.
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
        assert_ne!(fnv128(b"ab"), fnv128(b"ba"));
    }

    #[test]
    fn rename_invariance_of_both_forms() {
        let t1 = chain(["a", "b", "c", "i", "S"], [8, 6, 4, 2], false);
        let t2 = chain(["w", "x", "y", "z", "R"], [8, 6, 4, 2], false);
        assert_eq!(subtree_form(&t1, t1.root()).hash, subtree_form(&t2, t2.root()).hash);
        assert_eq!(canonical_form(&t1).hash, canonical_form(&t2).hash);
    }

    #[test]
    fn extents_are_part_of_the_hash() {
        let t1 = chain(["a", "b", "c", "i", "S"], [8, 6, 4, 2], false);
        let t2 = chain(["a", "b", "c", "i", "S"], [8, 6, 4, 3], false);
        assert_ne!(subtree_form(&t1, t1.root()).hash, subtree_form(&t2, t2.root()).hash);
        assert_ne!(canonical_form(&t1).hash, canonical_form(&t2).hash);
    }

    #[test]
    fn commutative_swap_changes_strict_but_not_canonical() {
        let t1 = chain(["a", "b", "c", "i", "S"], [8, 6, 4, 2], false);
        let t2 = chain(["a", "b", "c", "i", "S"], [8, 6, 4, 2], true);
        assert_ne!(subtree_form(&t1, t1.root()).hash, subtree_form(&t2, t2.root()).hash);
        assert_eq!(canonical_form(&t1).hash, canonical_form(&t2).hash);
    }

    #[test]
    fn bijections_cover_every_index_and_node() {
        let t = chain(["a", "b", "c", "i", "S"], [8, 6, 4, 2], false);
        let f = canonical_form(&t);
        assert_eq!(f.index_order.len(), 4);
        assert_eq!(f.node_order.len(), t.len());
        for id in t.ids() {
            assert!(f.position_of(id).is_some());
        }
    }

    #[test]
    fn monotone_bijection_detects_order_flip() {
        let mut sp = IndexSpace::new();
        let a = sp.declare("a", 4);
        let b = sp.declare("b", 4);
        let sf1 = SubtreeForm { hash: 0, index_order: vec![a, b], nodes: vec![] };
        let sf2 = SubtreeForm { hash: 0, index_order: vec![b, a], nodes: vec![] };
        assert!(sf1.monotone_bijection_to(&sf1));
        assert!(!sf1.monotone_bijection_to(&sf2));
        assert!(sf2.monotone_bijection_to(&sf2));
    }

    #[test]
    fn tied_operands_hash_equal_under_swap() {
        // Both operands of the root are structurally identical leaves with
        // distinct indices — the tie case where a local decision is
        // ambiguous and only full-stream enumeration is exact.
        let build = |swap: bool| {
            let mut sp = IndexSpace::new();
            let i = sp.declare("i", 4);
            let j = sp.declare("j", 4);
            let mut t = ExprTree::new(sp);
            let x = t.add_leaf(Tensor::new("X", vec![i]));
            let y = t.add_leaf(Tensor::new("Y", vec![j]));
            let (l, r) = if swap { (y, x) } else { (x, y) };
            let root = t.add_contract(Tensor::new("S", vec![i, j]), IndexSet::new(), l, r).unwrap();
            t.set_root(root);
            t
        };
        assert_eq!(canonical_form(&build(false)).hash, canonical_form(&build(true)).hash);
    }
}
