//! A small text notation for tensor contraction expressions.
//!
//! The program-synthesis system of the paper accepts "an algebraic formula
//! expressed in a high-level notation"; this module provides one:
//!
//! ```text
//! # the paper's Fig. 2(a) computation
//! range a, b, c, d = 480;
//! range e, f = 64;
//! range i, j, k, l = 32;
//! input A[a,c,i,k];  input B[b,e,f,l];
//! input C[d,f,j,k];  input D[c,d,e,l];
//! T1[b,c,d,f] = sum[e,l] B[b,e,f,l] * D[c,d,e,l];
//! T2[b,c,j,k] = sum[d,f] T1[b,c,d,f] * C[d,f,j,k];
//! S[a,b,i,j]  = sum[c,k] T2[b,c,j,k] * A[a,c,i,k];
//! ```
//!
//! Statements with **more than two factors** are kept as raw
//! [`SumOfProducts`] terms, the input form for the operation-minimization
//! search (`tce-opmin`), e.g.
//!
//! ```text
//! S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k]*B[b,e,f,l]*C[d,f,j,k]*D[c,d,e,l];
//! ```

use crate::error::ExprError;
use crate::formula::{Formula, FormulaSequence};
use crate::index::{IndexId, IndexSet, IndexSpace};
use crate::tensor::Tensor;

/// A multi-factor term `result = Σ_sum f1 × f2 × … × fn` awaiting
/// operation minimization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SumOfProducts {
    /// Produced array.
    pub result: Tensor,
    /// Summation indices.
    pub sum: IndexSet,
    /// The factor arrays (each referencing a declared input or a previously
    /// produced array by shape).
    pub factors: Vec<Tensor>,
}

impl SumOfProducts {
    /// Flops of the direct (single fused loop nest) implementation: one
    /// point per element of the full iteration space per multiply, i.e.
    /// `n_factors · ∏ N` over all distinct indices — the paper's `4N^10`
    /// for the four-factor ten-index example.
    pub fn direct_op_count(&self, space: &IndexSpace) -> u128 {
        let mut all = self.result.dim_set();
        for f in &self.factors {
            all = all.union(&f.dim_set());
        }
        self.factors.len() as u128 * space.volume(all.as_slice())
    }
}

/// One parsed statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Statement {
    /// A binary (or unary-sum) formula.
    Formula(Formula),
    /// A term with ≥ 3 factors, to be decomposed by operation minimization.
    BigTerm(SumOfProducts),
}

/// A parsed program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Declared index ranges.
    pub space: IndexSpace,
    /// Declared input arrays.
    pub inputs: Vec<Tensor>,
    /// Statements in source order.
    pub statements: Vec<Statement>,
    /// Source position (1-based line, column) where each array name was
    /// declared: `input` declarations and statement results. Lets tools
    /// report diagnostics as `file:line:col` anchored at the declaration.
    /// Records the *first* declaration of each name; every declaration
    /// event (including re-declarations) is in [`Self::decl_sites`].
    pub spans: std::collections::HashMap<String, (usize, usize)>,
    /// Every array declaration event in source order — `input`
    /// declarations and statement results, one entry per occurrence, so
    /// duplicate declarations (last-one-wins at lowering time) remain
    /// visible to static analysis with both spans.
    pub decl_sites: Vec<(String, (usize, usize))>,
}

impl Program {
    /// Source position (1-based line, column) of an array declaration, if
    /// the program was produced by [`parse`].
    pub fn span_of(&self, name: &str) -> Option<(usize, usize)> {
        self.spans.get(name).copied()
    }

    /// Convert to a [`FormulaSequence`], failing if any statement still
    /// needs operation minimization.
    pub fn to_sequence(&self) -> Result<FormulaSequence, ExprError> {
        let mut seq = FormulaSequence::new(self.space.clone());
        seq.inputs = self.inputs.clone();
        for st in &self.statements {
            match st {
                Statement::Formula(f) => seq.formulas.push(f.clone()),
                Statement::BigTerm(t) => {
                    return Err(ExprError::Malformed(format!(
                        "`{}` has {} factors; run operation minimization first",
                        t.result.name,
                        t.factors.len()
                    )))
                }
            }
        }
        seq.validate()?;
        Ok(seq)
    }

    /// The big terms awaiting operation minimization, in source order.
    pub fn big_terms(&self) -> Vec<&SumOfProducts> {
        self.statements
            .iter()
            .filter_map(|s| match s {
                Statement::BigTerm(t) => Some(t),
                _ => None,
            })
            .collect()
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u64),
    Sym(char),
}

struct Lexer {
    toks: Vec<(usize, usize, Tok)>, // (line, column, token) — both 1-based
    pos: usize,
}

impl Lexer {
    fn new(src: &str) -> Result<Self, ExprError> {
        let mut toks = Vec::new();
        for (ln0, line) in src.lines().enumerate() {
            let ln = ln0 + 1;
            let line = line.split('#').next().unwrap_or("");
            // 1-based character column of the token start.
            let col_of = |byte: usize| line[..byte].chars().count() + 1;
            let mut chars = line.char_indices().peekable();
            while let Some(&(start, c)) = chars.peek() {
                if c.is_whitespace() {
                    chars.next();
                } else if c.is_ascii_alphabetic() || c == '_' {
                    let mut end = start;
                    while let Some(&(p, c2)) = chars.peek() {
                        if c2.is_ascii_alphanumeric() || c2 == '_' {
                            end = p + c2.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push((ln, col_of(start), Tok::Ident(line[start..end].to_owned())));
                } else if c.is_ascii_digit() {
                    let mut end = start;
                    while let Some(&(p, c2)) = chars.peek() {
                        if c2.is_ascii_digit() {
                            end = p + 1;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let n: u64 = line[start..end].parse().map_err(|_| ExprError::Parse {
                        line: ln,
                        col: col_of(start),
                        msg: format!("bad number `{}`", &line[start..end]),
                    })?;
                    toks.push((ln, col_of(start), Tok::Num(n)));
                } else if "[],=*;".contains(c) {
                    toks.push((ln, col_of(start), Tok::Sym(c)));
                    chars.next();
                } else {
                    return Err(ExprError::Parse {
                        line: ln,
                        col: col_of(start),
                        msg: format!("unexpected character `{c}`"),
                    });
                }
            }
        }
        Ok(Self { toks, pos: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, _, t)| t)
    }

    /// Position of the current token (or the last one at end of input).
    fn span(&self) -> (usize, usize) {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(l, c, _)| (*l, *c))
            .unwrap_or((0, 0))
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, _, t)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> ExprError {
        let (line, col) = self.span();
        ExprError::Parse { line, col, msg: msg.into() }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ExprError> {
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ExprError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }
}

/// Parse source text into a [`Program`].
pub fn parse(src: &str) -> Result<Program, ExprError> {
    let mut lx = Lexer::new(src)?;
    let mut prog = Program::default();

    // Index list `[a,b,c]` where every name must already be declared.
    fn index_list(lx: &mut Lexer, space: &IndexSpace) -> Result<Vec<IndexId>, ExprError> {
        lx.expect_sym('[')?;
        let mut ids = Vec::new();
        if let Some(Tok::Sym(']')) = lx.peek() {
            lx.next();
            return Ok(ids);
        }
        loop {
            let (line, col) = lx.span();
            let name = lx.expect_ident()?;
            let id = space.lookup(&name).ok_or_else(|| ExprError::Parse {
                line,
                col,
                msg: format!("index `{name}` not declared by any `range`"),
            })?;
            ids.push(id);
            match lx.next() {
                Some(Tok::Sym(',')) => continue,
                Some(Tok::Sym(']')) => break,
                other => return Err(lx.err(format!("expected `,` or `]`, found {other:?}"))),
            }
        }
        Ok(ids)
    }

    fn tensor_ref(lx: &mut Lexer, space: &IndexSpace) -> Result<Tensor, ExprError> {
        let name = lx.expect_ident()?;
        let dims = index_list(lx, space)?;
        // Tensor::new panics on repeated dims (a programming error in
        // library use); for *user input* report a parse error instead.
        let mut seen = dims.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != dims.len() {
            return Err(lx.err(format!("array `{name}` repeats a dimension index")));
        }
        Ok(Tensor::new(name, dims))
    }

    while lx.peek().is_some() {
        match lx.peek() {
            Some(Tok::Ident(kw)) if kw == "range" => {
                lx.next();
                let mut names = vec![lx.expect_ident()?];
                loop {
                    match lx.next() {
                        Some(Tok::Sym(',')) => names.push(lx.expect_ident()?),
                        Some(Tok::Sym('=')) => break,
                        other => {
                            return Err(lx.err(format!("expected `,` or `=`, found {other:?}")))
                        }
                    }
                }
                let extent = match lx.next() {
                    Some(Tok::Num(n)) => n,
                    other => return Err(lx.err(format!("expected extent, found {other:?}"))),
                };
                lx.expect_sym(';')?;
                for n in names {
                    if let Some(prev) = prog.space.lookup(&n) {
                        if prog.space.extent(prev) != extent {
                            return Err(lx.err(format!(
                                "index `{n}` re-declared with extent {extent} (was {})",
                                prog.space.extent(prev)
                            )));
                        }
                    }
                    if extent == 0 {
                        return Err(lx.err(format!("index `{n}` declared with zero extent")));
                    }
                    prog.space.declare(&n, extent);
                }
            }
            Some(Tok::Ident(kw)) if kw == "input" => {
                lx.next();
                let at = lx.span();
                let t = tensor_ref(&mut lx, &prog.space)?;
                lx.expect_sym(';')?;
                prog.spans.entry(t.name.clone()).or_insert(at);
                prog.decl_sites.push((t.name.clone(), at));
                prog.inputs.push(t);
            }
            _ => {
                // `Name[dims] = [sum[list]] factor (* factor)* ;`
                let at = lx.span();
                let result = tensor_ref(&mut lx, &prog.space)?;
                prog.spans.entry(result.name.clone()).or_insert(at);
                prog.decl_sites.push((result.name.clone(), at));
                lx.expect_sym('=')?;
                let mut sum = IndexSet::new();
                if let Some(Tok::Ident(kw)) = lx.peek() {
                    if kw == "sum" {
                        lx.next();
                        for id in index_list(&mut lx, &prog.space)? {
                            sum.insert(id);
                        }
                    }
                }
                let mut factors = vec![tensor_ref(&mut lx, &prog.space)?];
                loop {
                    match lx.next() {
                        Some(Tok::Sym('*')) => factors.push(tensor_ref(&mut lx, &prog.space)?),
                        Some(Tok::Sym(';')) => break,
                        other => {
                            return Err(lx.err(format!("expected `*` or `;`, found {other:?}")))
                        }
                    }
                }
                let stmt = match factors.len() {
                    1 => {
                        // A chain of unary summations, one per summed index,
                        // with fresh intermediate names `<result>__<index>`.
                        let factor = factors.pop().expect("one factor present");
                        let mut remaining = factor.dim_set();
                        let mut operand_name = factor.name.clone();
                        let mut formulas = Vec::new();
                        let sum_order: Vec<IndexId> = sum.iter().collect();
                        for (n, &s) in sum_order.iter().enumerate() {
                            remaining.remove(s);
                            let is_last = n + 1 == sum_order.len();
                            let name = if is_last {
                                result.name.clone()
                            } else {
                                format!("{}__{}", result.name, prog.space.name(s))
                            };
                            let dims: Vec<IndexId> = remaining.iter().collect();
                            formulas.push(Formula::Sum {
                                result: Tensor::new(name.clone(), dims),
                                operand: operand_name.clone(),
                                sum: s,
                            });
                            operand_name = name;
                        }
                        if formulas.is_empty() {
                            return Err(lx.err(format!(
                                "`{}`: single-factor statement without summation",
                                result.name
                            )));
                        }
                        for f in formulas {
                            prog.statements.push(Statement::Formula(f));
                        }
                        continue;
                    }
                    2 => {
                        let rhs = factors.pop().expect("two factors present");
                        let lhs = factors.pop().expect("two factors present");
                        if sum.is_empty() {
                            Statement::Formula(Formula::Mul {
                                result,
                                lhs: lhs.name,
                                rhs: rhs.name,
                            })
                        } else {
                            Statement::Formula(Formula::Contract {
                                result,
                                lhs: lhs.name,
                                rhs: rhs.name,
                                sum,
                            })
                        }
                    }
                    _ => Statement::BigTerm(SumOfProducts { result, sum, factors }),
                };
                prog.statements.push(stmt);
            }
        }
    }
    Ok(prog)
}

/// The paper's Fig. 2(a) program, ready to parse in tests and examples.
pub const FIG2_SOURCE: &str = "\
range a, b, c, d = 480;
range e, f = 64;
range i, j, k, l = 32;
input A[a,c,i,k];
input B[b,e,f,l];
input C[d,f,j,k];
input D[c,d,e,l];
T1[b,c,d,f] = sum[e,l] B[b,e,f,l] * D[c,d,e,l];
T2[b,c,j,k] = sum[d,f] T1[b,c,d,f] * C[d,f,j,k];
S[a,b,i,j] = sum[c,k] T2[b,c,j,k] * A[a,c,i,k];
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig2() {
        let p = parse(FIG2_SOURCE).unwrap();
        assert_eq!(p.inputs.len(), 4);
        assert_eq!(p.statements.len(), 3);
        let seq = p.to_sequence().unwrap();
        let tree = seq.to_tree().unwrap();
        assert!(tree.is_contraction_tree());
        assert_eq!(tree.node(tree.root()).tensor.name, "S");
    }

    #[test]
    fn parses_big_term() {
        let src = "\
range a,b,c,d = 10; range e,f = 4; range i,j,k,l = 3;
input A[a,c,i,k]; input B[b,e,f,l]; input C[d,f,j,k]; input D[c,d,e,l];
S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k]*B[b,e,f,l]*C[d,f,j,k]*D[c,d,e,l];
";
        let p = parse(src).unwrap();
        let terms = p.big_terms();
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].factors.len(), 4);
        // 4·N^10 with mixed extents.
        let direct = terms[0].direct_op_count(&p.space);
        assert_eq!(direct, 4 * 10u128.pow(4) * 4u128.pow(2) * 3u128.pow(4));
        // Cannot lower to a sequence before operation minimization.
        assert!(p.to_sequence().is_err());
    }

    #[test]
    fn parses_unary_sum_chain() {
        let src = "\
range i = 5; range j = 6; range t = 7;
input A[i,j,t];
T1[j,t] = sum[i] A[i,j,t];
S[t] = sum[j] T1[j,t];
";
        let p = parse(src).unwrap();
        let seq = p.to_sequence().unwrap();
        assert_eq!(seq.formulas.len(), 2);
        let tree = seq.to_tree().unwrap();
        assert_eq!(tree.node(tree.root()).tensor.name, "S");
    }

    #[test]
    fn multi_index_unary_sum_expands_to_chain() {
        let src = "\
range i = 5; range j = 6; range t = 7;
input A[i,j,t];
S[t] = sum[i,j] A[i,j,t];
";
        let p = parse(src).unwrap();
        let seq = p.to_sequence().unwrap();
        assert_eq!(seq.formulas.len(), 2); // Σi then Σj
        assert_eq!(seq.validate().unwrap(), "S");
    }

    #[test]
    fn elementwise_mul_parses() {
        let src = "\
range j = 6; range t = 7;
input X[j,t]; input Y[j,t];
T[j,t] = X[j,t] * Y[j,t];
S[t] = sum[j] T[j,t];
";
        let p = parse(src).unwrap();
        let seq = p.to_sequence().unwrap();
        assert!(matches!(seq.formulas[0], Formula::Mul { .. }));
    }

    #[test]
    fn error_cases_report_lines() {
        // Undeclared index.
        let e = parse("input A[zz];").unwrap_err();
        assert!(matches!(e, ExprError::Parse { line: 1, .. }), "{e}");
        // Missing semicolon.
        let e = parse("range a = 4").unwrap_err();
        assert!(matches!(e, ExprError::Parse { .. }));
        // Garbage character.
        let e = parse("range a = 4; input A[a]; A ? 3").unwrap_err();
        assert!(matches!(e, ExprError::Parse { .. }));
        // Statement with one factor and no sum.
        let e = parse("range a = 4; input A[a]; B[a] = A[a];").unwrap_err();
        assert!(matches!(e, ExprError::Parse { .. }));
    }

    #[test]
    fn errors_carry_columns() {
        // Garbage character: anchored at the character itself.
        let e = parse("range a = 4; input A[a]; A ? 3").unwrap_err();
        assert!(matches!(e, ExprError::Parse { line: 1, col: 28, .. }), "{e:?}");
        // Undeclared index: anchored at the index token.
        let e = parse("range i = 5;\ninput A[i,zz];").unwrap_err();
        assert!(matches!(e, ExprError::Parse { line: 2, col: 11, .. }), "{e:?}");
        assert!(e.to_string().contains("line 2, column 11"), "{e}");
    }

    #[test]
    fn program_records_declaration_spans() {
        let p = parse(FIG2_SOURCE).unwrap();
        assert_eq!(p.span_of("A"), Some((4, 7)));
        assert_eq!(p.span_of("T1"), Some((8, 1)));
        assert_eq!(p.span_of("S"), Some((10, 1)));
        assert_eq!(p.span_of("nope"), None);
    }

    #[test]
    fn user_input_errors_do_not_panic() {
        // Repeated dimension index.
        let e = parse("range a = 4; input A[a,a];").unwrap_err();
        assert!(matches!(e, ExprError::Parse { .. }), "{e}");
        // Conflicting re-declaration.
        let e = parse("range a = 4; range a = 5;").unwrap_err();
        assert!(matches!(e, ExprError::Parse { .. }), "{e}");
        // Zero extent.
        let e = parse("range a = 0;").unwrap_err();
        assert!(matches!(e, ExprError::Parse { .. }), "{e}");
        // Consistent re-declaration is fine.
        assert!(parse("range a = 4; range a = 4; input A[a]; S[] = sum[a] A[a];").is_ok());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# header\n\nrange a = 4; # trailing\ninput A[a];\nS[] = sum[a] A[a];\n";
        let p = parse(src).unwrap();
        assert_eq!(p.inputs.len(), 1);
        let seq = p.to_sequence().unwrap();
        assert_eq!(seq.validate().unwrap(), "S");
    }
}
