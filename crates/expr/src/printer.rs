//! Pretty-printers: formula sequences in the paper's mathematical notation
//! and the direct (unfused) loop code of Fig. 2(b).

use crate::formula::{Formula, FormulaSequence};
use crate::index::IndexSpace;
use crate::tree::{ExprTree, NodeKind};

/// Render a formula sequence in the style of Fig. 2(a):
///
/// ```text
/// T1(b,c,d,f) = sum_{e,l} B(b,e,f,l) * D(c,d,e,l)
/// ```
pub fn render_sequence(seq: &FormulaSequence) -> String {
    let sp = &seq.space;
    let mut out = String::new();
    for f in &seq.formulas {
        match f {
            Formula::Mul { result, lhs, rhs } => {
                out.push_str(&format!("{} = {} * {}\n", result.render(sp), lhs, rhs));
            }
            Formula::Sum { result, operand, sum } => {
                out.push_str(&format!(
                    "{} = sum_{{{}}} {}\n",
                    result.render(sp),
                    sp.name(*sum),
                    operand
                ));
            }
            Formula::Contract { result, lhs, rhs, sum } => {
                out.push_str(&format!(
                    "{} = sum_{{{}}} {} * {}\n",
                    result.render(sp),
                    sp.render(sum.as_slice()),
                    lhs,
                    rhs
                ));
            }
        }
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Render the *unfused* loop code of an expression tree, one perfectly
/// nested loop per internal node in post order — the shape of Fig. 2(b):
///
/// ```text
/// T1=0; T2=0; S=0
/// for b, c, d, e, f, l
///   T1[b,c,d,f] += B[b,e,f,l] * D[c,d,e,l]
/// ...
/// ```
pub fn render_unfused_loops(tree: &ExprTree) -> String {
    let sp: &IndexSpace = &tree.space;
    let mut out = String::new();
    let internals: Vec<_> =
        tree.postorder().into_iter().filter(|&id| !tree.node(id).is_leaf()).collect();
    // Initialization line.
    for (n, &id) in internals.iter().enumerate() {
        if n > 0 {
            out.push_str("; ");
        }
        out.push_str(&format!("{}=0", tree.node(id).tensor.name));
    }
    out.push('\n');
    for &id in &internals {
        let node = tree.node(id);
        let loops = node.loop_indices();
        out.push_str(&format!("for {}\n", sp.render(loops.as_slice())));
        indent(&mut out, 1);
        match &node.kind {
            NodeKind::Contract { left, right, .. } => {
                let l = &tree.node(*left).tensor;
                let r = &tree.node(*right).tensor;
                out.push_str(&format!(
                    "{}[{}] += {}[{}] * {}[{}]\n",
                    node.tensor.name,
                    sp.render(&node.tensor.dims),
                    l.name,
                    sp.render(&l.dims),
                    r.name,
                    sp.render(&r.dims)
                ));
            }
            NodeKind::Reduce { child, .. } => {
                let c = &tree.node(*child).tensor;
                out.push_str(&format!(
                    "{}[{}] += {}[{}]\n",
                    node.tensor.name,
                    sp.render(&node.tensor.dims),
                    c.name,
                    sp.render(&c.dims)
                ));
            }
            NodeKind::Leaf => unreachable!("leaves were filtered out"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, FIG2_SOURCE};

    #[test]
    fn sequence_rendering_matches_fig2a() {
        let seq = parse(FIG2_SOURCE).unwrap().to_sequence().unwrap();
        let text = render_sequence(&seq);
        assert!(text.contains("T1(b,c,d,f) = sum_{e,l} B * D"));
        assert!(text.contains("S(a,b,i,j) = sum_{c,k} T2 * A"));
    }

    #[test]
    fn unfused_loops_match_fig2b_shape() {
        let tree = parse(FIG2_SOURCE).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let code = render_unfused_loops(&tree);
        assert!(code.starts_with("T1=0; T2=0; S=0\n"));
        assert!(code.contains("for b,c,d,e,f,l\n  T1[b,c,d,f] += B[b,e,f,l] * D[c,d,e,l]"));
        assert!(code.contains("for a,b,c,i,j,k\n  S[a,b,i,j] += T2[b,c,j,k] * A[a,c,i,k]"));
        // Three loop nests, in dependency order.
        assert_eq!(code.matches("for ").count(), 3);
        let p1 = code.find("T1[b,c,d,f] +=").unwrap();
        let p3 = code.find("S[a,b,i,j] +=").unwrap();
        assert!(p1 < p3);
    }

    #[test]
    fn reduce_nodes_print() {
        let src = "range i = 2; range t = 3; input A[i,t]; S[t] = sum[i] A[i,t];";
        let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let code = render_unfused_loops(&tree);
        assert!(code.contains("S[t] += A[i,t]"));
    }
}

/// Render the expression tree in Graphviz dot format: leaves are boxes,
/// contraction nodes are ellipses labeled with their summation indices.
pub fn render_dot(tree: &ExprTree) -> String {
    let sp = &tree.space;
    let mut out = String::from("digraph expr {\n  rankdir=BT;\n");
    for id in tree.ids() {
        let node = tree.node(id);
        match &node.kind {
            NodeKind::Leaf => {
                out.push_str(&format!(
                    "  n{} [shape=box, label=\"{}\"];\n",
                    id.0,
                    node.tensor.render(sp)
                ));
            }
            NodeKind::Contract { sum, .. } => {
                out.push_str(&format!(
                    "  n{} [shape=ellipse, label=\"{}\\nsum {{{}}}\"];\n",
                    id.0,
                    node.tensor.render(sp),
                    sp.render(sum.as_slice())
                ));
            }
            NodeKind::Reduce { sum, .. } => {
                out.push_str(&format!(
                    "  n{} [shape=ellipse, label=\"{}\\nsum {{{}}}\"];\n",
                    id.0,
                    node.tensor.render(sp),
                    sp.name(*sum)
                ));
            }
        }
        if let Some(parent) = node.parent {
            out.push_str(&format!("  n{} -> n{};\n", id.0, parent.0));
        }
    }
    out.push_str("}\n");
    out
}

/// Render an expression tree as a parseable `.tce` program: one `range`
/// declaration per index used by the tree, one `input` declaration per
/// distinct leaf name, and one statement per internal node in post order.
/// Round-trips through [`crate::parser::parse`] +
/// [`FormulaSequence::to_tree`] to an equivalent tree (same tensors, same
/// structure; node ids may differ). Used to pin fuzz reproducers as plain
/// workload files.
pub fn render_tce_source(tree: &ExprTree) -> String {
    let sp: &IndexSpace = &tree.space;
    let mut out = String::new();
    // Indices actually used, in declaration order.
    let mut used: Vec<crate::index::IndexId> = Vec::new();
    for id in tree.ids() {
        for &d in &tree.node(id).tensor.dims {
            if !used.contains(&d) {
                used.push(d);
            }
        }
        if let NodeKind::Reduce { sum, .. } = &tree.node(id).kind {
            if !used.contains(sum) {
                used.push(*sum);
            }
        }
    }
    used.sort_by_key(|d| d.0);
    for d in used {
        out.push_str(&format!("range {} = {};\n", sp.name(d), sp.extent(d)));
    }
    let dims = |t: &crate::tensor::Tensor| {
        t.dims.iter().map(|&d| sp.name(d)).collect::<Vec<_>>().join(",")
    };
    let mut declared: Vec<&str> = Vec::new();
    for id in tree.postorder() {
        let node = tree.node(id);
        if node.is_leaf() && !declared.contains(&node.tensor.name.as_str()) {
            declared.push(node.tensor.name.as_str());
            out.push_str(&format!("input {}[{}];\n", node.tensor.name, dims(&node.tensor)));
        }
    }
    for id in tree.postorder() {
        let node = tree.node(id);
        match &node.kind {
            NodeKind::Leaf => {}
            NodeKind::Reduce { sum, child } => {
                let c = &tree.node(*child).tensor;
                out.push_str(&format!(
                    "{}[{}] = sum[{}] {}[{}];\n",
                    node.tensor.name,
                    dims(&node.tensor),
                    sp.name(*sum),
                    c.name,
                    dims(c)
                ));
            }
            NodeKind::Contract { sum, left, right } => {
                let l = &tree.node(*left).tensor;
                let r = &tree.node(*right).tensor;
                let sum_str = if sum.is_empty() {
                    String::new()
                } else {
                    format!("sum[{}] ", sp.render(sum.as_slice()))
                };
                out.push_str(&format!(
                    "{}[{}] = {}{}[{}] * {}[{}];\n",
                    node.tensor.name,
                    dims(&node.tensor),
                    sum_str,
                    l.name,
                    dims(l),
                    r.name,
                    dims(r)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod source_tests {
    use super::*;
    use crate::parser::{parse, FIG2_SOURCE};

    #[test]
    fn tce_source_round_trips() {
        let tree = parse(FIG2_SOURCE).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let src = render_tce_source(&tree);
        let back = parse(&src).unwrap().to_sequence().unwrap().to_tree().unwrap();
        assert_eq!(tree.len(), back.len());
        // Same tensors (by name, dim names, extents) and same root.
        let sig = |t: &ExprTree| {
            let mut v: Vec<String> = t
                .ids()
                .map(|id| {
                    let n = t.node(id);
                    let d: Vec<String> = n
                        .tensor
                        .dims
                        .iter()
                        .map(|&x| format!("{}:{}", t.space.name(x), t.space.extent(x)))
                        .collect();
                    format!("{}[{}]", n.tensor.name, d.join(","))
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(sig(&tree), sig(&back));
        assert_eq!(tree.node(tree.root()).tensor.name, back.node(back.root()).tensor.name);
    }

    #[test]
    fn tce_source_handles_mul_reduce_and_scalars() {
        let src = "\
range a = 4; range b = 8;
input A[a,b]; input B[a,b];
T[a,b] = A[a,b] * B[a,b];
U[b] = sum[a] T[a,b];
S[] = sum[b] U[b];
";
        let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let rendered = render_tce_source(&tree);
        assert!(rendered.contains("T[a,b] = A[a,b] * B[a,b];"));
        assert!(rendered.contains("U[b] = sum[a] T[a,b];"));
        assert!(rendered.contains("S[] = sum[b] U[b];"));
        let back = parse(&rendered).unwrap().to_sequence().unwrap().to_tree().unwrap();
        assert_eq!(tree.len(), back.len());
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::parser::{parse, FIG2_SOURCE};

    #[test]
    fn dot_export_has_all_nodes_and_edges() {
        let tree = parse(FIG2_SOURCE).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let dot = render_dot(&tree);
        assert!(dot.starts_with("digraph expr {"));
        // 7 nodes, 6 edges.
        assert_eq!(dot.matches("label=").count(), 7);
        assert_eq!(dot.matches(" -> ").count(), 6);
        assert!(dot.contains("T1(b,c,d,f)"));
        assert!(dot.contains("sum {e,l}"));
        assert!(dot.contains("shape=box"));
    }
}
