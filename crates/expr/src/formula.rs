//! Formula sequences (Fig. 1a / Fig. 2a of the paper).
//!
//! A *formula sequence* lists input arrays followed by formulae, each
//! producing an intermediate array; the last formula gives the final result.
//! A formula is a multiplication `Tr = X × Y`, a summation `Tr = Σ_i X`, or
//! the combined contraction `Tr = Σ_K X × Y` that the parallel algorithm
//! operates on. [`FormulaSequence::to_tree`] converts a validated sequence
//! into the binary-tree representation.

use std::collections::HashMap;

use crate::error::ExprError;
use crate::index::{IndexId, IndexSet, IndexSpace};
use crate::tensor::Tensor;
use crate::tree::{ExprTree, NodeId};

/// One formula of a sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// `result = lhs × rhs` (element-wise over the union of indices).
    Mul {
        /// Produced array.
        result: Tensor,
        /// Name of the left operand array.
        lhs: String,
        /// Name of the right operand array.
        rhs: String,
    },
    /// `result = Σ_sum operand`.
    Sum {
        /// Produced array.
        result: Tensor,
        /// Name of the operand array.
        operand: String,
        /// The summed index.
        sum: IndexId,
    },
    /// `result = Σ_sum lhs × rhs` — a multiplication node and the summation
    /// nodes directly above it, collapsed (the form used throughout §3).
    Contract {
        /// Produced array.
        result: Tensor,
        /// Name of the left operand array.
        lhs: String,
        /// Name of the right operand array.
        rhs: String,
        /// Summation indices.
        sum: IndexSet,
    },
}

impl Formula {
    /// The array this formula produces.
    pub fn result(&self) -> &Tensor {
        match self {
            Formula::Mul { result, .. }
            | Formula::Sum { result, .. }
            | Formula::Contract { result, .. } => result,
        }
    }

    /// Names of the arrays this formula consumes.
    pub fn operands(&self) -> Vec<&str> {
        match self {
            Formula::Mul { lhs, rhs, .. } | Formula::Contract { lhs, rhs, .. } => {
                vec![lhs, rhs]
            }
            Formula::Sum { operand, .. } => vec![operand],
        }
    }
}

/// A full sequence: declared inputs plus formulae in dependency order.
#[derive(Clone, Debug, Default)]
pub struct FormulaSequence {
    /// The index space.
    pub space: IndexSpace,
    /// Input arrays.
    pub inputs: Vec<Tensor>,
    /// Formulae; the last one produces the final result.
    pub formulas: Vec<Formula>,
}

impl FormulaSequence {
    /// New empty sequence over `space`.
    pub fn new(space: IndexSpace) -> Self {
        Self { space, inputs: Vec::new(), formulas: Vec::new() }
    }

    /// Validate the whole sequence: unique names, operands defined before
    /// use, per-formula well-formedness (`IX ∪ IY ⊆ ITr ∪ sum`, summation
    /// index removed, …). Returns the name of the final result on success.
    pub fn validate(&self) -> Result<&str, ExprError> {
        let mut defined: HashMap<&str, &Tensor> = HashMap::new();
        for t in &self.inputs {
            if defined.insert(&t.name, t).is_some() {
                return Err(ExprError::Redefined(t.name.clone()));
            }
        }
        for f in &self.formulas {
            for op in f.operands() {
                if !defined.contains_key(op) {
                    return Err(ExprError::Undefined(op.to_owned()));
                }
            }
            let res = f.result();
            match f {
                Formula::Mul { lhs, rhs, .. } => {
                    let ix = defined[lhs.as_str()].dim_set();
                    let iy = defined[rhs.as_str()].dim_set();
                    if ix.union(&iy) != res.dim_set() {
                        return Err(ExprError::Malformed(format!(
                            "`{}`: multiplication result must carry IX ∪ IY",
                            res.name
                        )));
                    }
                }
                Formula::Sum { operand, sum, .. } => {
                    let mut ix = defined[operand.as_str()].dim_set();
                    if !ix.contains(*sum) {
                        return Err(ExprError::Malformed(format!(
                            "`{}`: summation index not in operand",
                            res.name
                        )));
                    }
                    ix.remove(*sum);
                    if ix != res.dim_set() {
                        return Err(ExprError::Malformed(format!(
                            "`{}`: result must carry IX − {{i}}",
                            res.name
                        )));
                    }
                }
                Formula::Contract { lhs, rhs, sum, .. } => {
                    let ix = defined[lhs.as_str()].dim_set();
                    let iy = defined[rhs.as_str()].dim_set();
                    let rhs_all = ix.union(&iy);
                    if !sum.is_subset(&rhs_all)
                        || !sum.is_disjoint(&res.dim_set())
                        || rhs_all.difference(sum) != res.dim_set()
                    {
                        return Err(ExprError::Malformed(format!(
                            "`{}`: contraction result must carry (IX ∪ IY) − K",
                            res.name
                        )));
                    }
                }
            }
            if defined.insert(&res.name, res).is_some() {
                return Err(ExprError::Redefined(res.name.clone()));
            }
        }
        self.formulas
            .last()
            .map(|f| f.result().name.as_str())
            .ok_or_else(|| ExprError::Malformed("empty formula sequence".into()))
    }

    /// Convert the validated sequence into a binary expression tree. Each
    /// `Mul`/`Contract` becomes a two-child node, each `Sum` a one-child
    /// node; the last formula becomes the root. An input used by more than
    /// one formula is materialized as a fresh leaf at each use (trees do not
    /// share sub-expressions).
    pub fn to_tree(&self) -> Result<ExprTree, ExprError> {
        self.validate()?;
        let mut tree = ExprTree::new(self.space.clone());
        // Map from array name to the (unconsumed) node producing it.
        let mut producer: HashMap<String, NodeId> = HashMap::new();
        let inputs: HashMap<&str, &Tensor> =
            self.inputs.iter().map(|t| (t.name.as_str(), t)).collect();

        let take = |tree: &mut ExprTree,
                    producer: &mut HashMap<String, NodeId>,
                    name: &str|
         -> Result<NodeId, ExprError> {
            if let Some(id) = producer.remove(name) {
                return Ok(id);
            }
            // Fresh leaf per use of an input array.
            let t = inputs.get(name).ok_or_else(|| ExprError::Undefined(name.to_owned()))?;
            Ok(tree.add_leaf((*t).clone()))
        };

        for f in &self.formulas {
            let id = match f {
                Formula::Mul { result, lhs, rhs } => {
                    let l = take(&mut tree, &mut producer, lhs)?;
                    let r = take(&mut tree, &mut producer, rhs)?;
                    tree.add_contract(result.clone(), IndexSet::new(), l, r)?
                }
                Formula::Contract { result, lhs, rhs, sum } => {
                    let l = take(&mut tree, &mut producer, lhs)?;
                    let r = take(&mut tree, &mut producer, rhs)?;
                    tree.add_contract(result.clone(), sum.clone(), l, r)?
                }
                Formula::Sum { result, operand, sum } => {
                    let c = take(&mut tree, &mut producer, operand)?;
                    tree.add_reduce(result.clone(), *sum, c)?
                }
            };
            producer.insert(f.result().name.clone(), id);
        }
        let root_name = &self.formulas.last().expect("validated: non-empty").result().name;
        let root = producer[root_name.as_str()];
        tree.set_root(root);
        Ok(tree)
    }

    /// Total flop count of the sequence (via the tree representation).
    pub fn total_op_count(&self) -> Result<u128, ExprError> {
        Ok(self.to_tree()?.total_op_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1(a): T1(j,t)=Σ_i A(i,j,t); T2(j,t)=Σ_k B(j,k,t);
    /// T3(j,t)=T1×T2; S(t)=Σ_j T3.
    fn fig1(ni: u64, nj: u64, nk: u64, nt: u64) -> FormulaSequence {
        let mut sp = IndexSpace::new();
        let i = sp.declare("i", ni);
        let j = sp.declare("j", nj);
        let k = sp.declare("k", nk);
        let t = sp.declare("t", nt);
        let mut seq = FormulaSequence::new(sp);
        seq.inputs.push(Tensor::new("A", vec![i, j, t]));
        seq.inputs.push(Tensor::new("B", vec![j, k, t]));
        seq.formulas.push(Formula::Sum {
            result: Tensor::new("T1", vec![j, t]),
            operand: "A".into(),
            sum: i,
        });
        seq.formulas.push(Formula::Sum {
            result: Tensor::new("T2", vec![j, t]),
            operand: "B".into(),
            sum: k,
        });
        seq.formulas.push(Formula::Mul {
            result: Tensor::new("T3", vec![j, t]),
            lhs: "T1".into(),
            rhs: "T2".into(),
        });
        seq.formulas.push(Formula::Sum {
            result: Tensor::new("S", vec![t]),
            operand: "T3".into(),
            sum: j,
        });
        seq
    }

    #[test]
    fn fig1_validates_and_builds_tree() {
        let seq = fig1(10, 11, 12, 13);
        assert_eq!(seq.validate().unwrap(), "S");
        let tree = seq.to_tree().unwrap();
        // 2 leaves + 4 formula nodes.
        assert_eq!(tree.len(), 6);
        assert_eq!(tree.node(tree.root()).tensor.name, "S");
    }

    #[test]
    fn fig1_op_count_matches_paper_formula() {
        // Paper §2: the factored form needs N_iN_jN_t + N_jN_kN_t + 2N_jN_t.
        let (ni, nj, nk, nt) = (10u128, 11, 12, 13);
        let seq = fig1(10, 11, 12, 13);
        let got = seq.total_op_count().unwrap();
        assert_eq!(got, ni * nj * nt + nj * nk * nt + 2 * nj * nt);
    }

    #[test]
    fn undefined_operand_rejected() {
        let mut seq = fig1(4, 4, 4, 4);
        if let Formula::Sum { operand, .. } = &mut seq.formulas[0] {
            *operand = "Qx".into();
        }
        assert!(matches!(seq.validate(), Err(ExprError::Undefined(_))));
    }

    #[test]
    fn redefinition_rejected() {
        let mut seq = fig1(4, 4, 4, 4);
        let dup = seq.inputs[0].clone();
        seq.inputs.push(dup);
        assert!(matches!(seq.validate(), Err(ExprError::Redefined(_))));
    }

    #[test]
    fn malformed_mul_rejected() {
        let mut seq = fig1(4, 4, 4, 4);
        // Break T3: drop dimension t from its result.
        if let Formula::Mul { result, .. } = &mut seq.formulas[2] {
            result.dims.pop();
        }
        assert!(matches!(seq.validate(), Err(ExprError::Malformed(_))));
    }

    #[test]
    fn empty_sequence_rejected() {
        let seq = FormulaSequence::new(IndexSpace::new());
        assert!(seq.validate().is_err());
    }

    #[test]
    fn input_used_twice_gets_two_leaves() {
        let mut sp = IndexSpace::new();
        let i = sp.declare("i", 3);
        let j = sp.declare("j", 3);
        let k = sp.declare("k", 3);
        let mut seq = FormulaSequence::new(sp);
        seq.inputs.push(Tensor::new("A", vec![i, j]));
        seq.inputs.push(Tensor::new("B", vec![j, k]));
        seq.formulas.push(Formula::Contract {
            result: Tensor::new("T", vec![i, k]),
            lhs: "A".into(),
            rhs: "B".into(),
            sum: IndexSet::from_iter([j]),
        });
        seq.formulas.push(Formula::Contract {
            result: Tensor::new("S", vec![j, k]),
            lhs: "A".into(),
            rhs: "T".into(),
            sum: IndexSet::from_iter([i]),
        });
        let tree = seq.to_tree().unwrap();
        // A appears twice as a leaf: 3 distinct leaves + 2 contractions.
        assert_eq!(tree.len(), 5);
        assert!(tree.is_contraction_tree());
    }
}
