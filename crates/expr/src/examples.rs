//! Canned expressions from the paper, used across examples, tests, and
//! the table-regeneration harness.

use crate::formula::FormulaSequence;
use crate::index::{IndexId, IndexSpace};
use crate::parser::{self, SumOfProducts};
use crate::tensor::Tensor;
use crate::tree::ExprTree;

/// Array extents of the §4 application example: `N_a..N_d = 480`,
/// `N_e,N_f = 64`, `N_i..N_l = 32`.
pub const PAPER_EXTENTS: PaperExtents =
    PaperExtents { occupied: 32, virtual_small: 64, virtual_large: 480 };

/// Parameterized extents for the CCSD-like example, so tests and the
/// simulator can run scaled-down instances with identical structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaperExtents {
    /// Extent of `i, j, k, l` (occupied orbitals; 32 in the paper).
    pub occupied: u64,
    /// Extent of `e, f` (64 in the paper).
    pub virtual_small: u64,
    /// Extent of `a, b, c, d` (480 in the paper).
    pub virtual_large: u64,
}

impl PaperExtents {
    /// A small instance with the same index structure, suitable for actual
    /// execution in the simulator (`480/64/32` scaled to `ratio`-preserving
    /// small numbers).
    pub fn tiny() -> Self {
        PaperExtents { occupied: 4, virtual_small: 8, virtual_large: 12 }
    }

    fn source(&self) -> String {
        format!(
            "range a, b, c, d = {};\nrange e, f = {};\nrange i, j, k, l = {};\n\
             input A[a,c,i,k];\ninput B[b,e,f,l];\ninput C[d,f,j,k];\ninput D[c,d,e,l];\n\
             T1[b,c,d,f] = sum[e,l] B[b,e,f,l] * D[c,d,e,l];\n\
             T2[b,c,j,k] = sum[d,f] T1[b,c,d,f] * C[d,f,j,k];\n\
             S[a,b,i,j] = sum[c,k] T2[b,c,j,k] * A[a,c,i,k];\n",
            self.virtual_large, self.virtual_small, self.occupied
        )
    }
}

/// The Fig. 2(a) formula sequence (the operation-minimal form of
/// `S_abij = Σ_cdefkl A·B·C·D`) at the given extents.
pub fn ccsd_sequence(extents: PaperExtents) -> FormulaSequence {
    parser::parse(&extents.source())
        .expect("builtin source parses")
        .to_sequence()
        .expect("builtin sequence is well-formed")
}

/// The Fig. 2(a) expression tree at the given extents.
pub fn ccsd_tree(extents: PaperExtents) -> ExprTree {
    ccsd_sequence(extents).to_tree().expect("builtin tree builds")
}

/// The raw four-factor term of §2, `S_abij = Σ_cdefkl A·B·C·D`, for
/// operation minimization (`4N^10` if evaluated directly).
pub fn ccsd_sum_of_products(extents: PaperExtents) -> (IndexSpace, SumOfProducts) {
    let src = format!(
        "range a, b, c, d = {};\nrange e, f = {};\nrange i, j, k, l = {};\n\
         input A[a,c,i,k];\ninput B[b,e,f,l];\ninput C[d,f,j,k];\ninput D[c,d,e,l];\n\
         S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k]*B[b,e,f,l]*C[d,f,j,k]*D[c,d,e,l];\n",
        extents.virtual_large, extents.virtual_small, extents.occupied
    );
    let prog = parser::parse(&src).expect("builtin source parses");
    let term = prog.big_terms()[0].clone();
    (prog.space, term)
}

/// The Fig. 1(a) sequence `S(t) = Σ_{i,j,k} A(i,j,t)·B(j,k,t)` in its
/// factored form (`T1 = Σ_i A; T2 = Σ_k B; T3 = T1×T2; S = Σ_j T3`).
pub fn fig1_sequence(ni: u64, nj: u64, nk: u64, nt: u64) -> FormulaSequence {
    let src = format!(
        "range i = {ni};\nrange j = {nj};\nrange k = {nk};\nrange t = {nt};\n\
         input A[i,j,t];\ninput B[j,k,t];\n\
         T1[j,t] = sum[i] A[i,j,t];\n\
         T2[j,t] = sum[k] B[j,k,t];\n\
         T3[j,t] = T1[j,t] * T2[j,t];\n\
         S[t] = sum[j] T3[j,t];\n"
    );
    parser::parse(&src).expect("example parses").to_sequence().expect("example lowers")
}

/// The Fig. 1 term in raw form (`S(t) = Σ_{i,j,k} A·B`), direct cost
/// `2·N_i·N_j·N_k·N_t`.
pub fn fig1_sum_of_products(ni: u64, nj: u64, nk: u64, nt: u64) -> (IndexSpace, SumOfProducts) {
    let mut sp = IndexSpace::new();
    let i = sp.declare("i", ni);
    let j = sp.declare("j", nj);
    let k = sp.declare("k", nk);
    let t = sp.declare("t", nt);
    let term = SumOfProducts {
        result: Tensor::new("S", vec![t]),
        sum: [i, j, k].into_iter().collect(),
        factors: vec![Tensor::new("A", vec![i, j, t]), Tensor::new("B", vec![j, k, t])],
    };
    (sp, term)
}

/// Look up the four paper index groups by name in a CCSD-example space.
pub fn ccsd_index(space: &IndexSpace, name: &str) -> IndexId {
    space.lookup(name).expect("a paper index name (a/b/c/d, e/f, i/j/k/l) in a CCSD space")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_extents_tree() {
        let tree = ccsd_tree(PAPER_EXTENTS);
        assert!(tree.is_contraction_tree());
        // §2: the factored form needs ~6N^6 flops; with mixed extents:
        assert_eq!(
            tree.total_op_count(),
            2 * 480u128.pow(3) * 64 * 64 * 32
                + 2 * 480u128.pow(3) * 64 * 32 * 32
                + 2 * 480u128.pow(3) * 32u128.pow(3)
        );
    }

    #[test]
    fn sum_of_products_direct_cost() {
        let (sp, term) = ccsd_sum_of_products(PAPER_EXTENTS);
        // 4·(N_a N_b N_c N_d)(N_e N_f)(N_i N_j N_k N_l)
        assert_eq!(term.direct_op_count(&sp), 4 * 480u128.pow(4) * 64u128.pow(2) * 32u128.pow(4));
    }

    #[test]
    fn fig1_roundtrip() {
        let seq = fig1_sequence(10, 20, 30, 40);
        assert_eq!(seq.validate().unwrap(), "S");
        let (sp, term) = fig1_sum_of_products(10, 20, 30, 40);
        assert_eq!(term.direct_op_count(&sp), 2 * 10 * 20 * 30 * 40);
    }

    #[test]
    fn tiny_extents_build() {
        let tree = ccsd_tree(PaperExtents::tiny());
        assert!(tree.is_contraction_tree());
        assert!(tree.total_op_count() < 1u128 << 40);
    }
}

/// A larger CCSD-like workload: a four-contraction ladder over five input
/// tensors,
///
/// ```text
/// X1(c,d,k,l) = Σ_{e,f} V(c,e,k,f) · W(e,d,f,l)
/// X2(c,d,i,j) = Σ_{k,l} X1(c,d,k,l) · U(k,l,i,j)
/// X3(b,c,i,j) = Σ_{d}   X2(c,d,i,j) · Y(d,b)
/// S(a,b,i,j)  = Σ_{c}   X3(b,c,i,j) · Z(c,a)
/// ```
///
/// exercising deeper trees than the paper's three-step example.
pub fn ladder_sequence(extents: PaperExtents) -> FormulaSequence {
    let src = format!(
        "range a, b, c, d = {v};\nrange e, f = {w};\nrange i, j, k, l = {o};\n\
         input V[c,e,k,f];\ninput W[e,d,f,l];\ninput U[k,l,i,j];\n\
         input Y[d,b];\ninput Z[c,a];\n\
         X1[c,d,k,l] = sum[e,f] V[c,e,k,f] * W[e,d,f,l];\n\
         X2[c,d,i,j] = sum[k,l] X1[c,d,k,l] * U[k,l,i,j];\n\
         X3[b,c,i,j] = sum[d] X2[c,d,i,j] * Y[d,b];\n\
         S[a,b,i,j] = sum[c] X3[b,c,i,j] * Z[c,a];\n",
        v = extents.virtual_large,
        w = extents.virtual_small,
        o = extents.occupied
    );
    parser::parse(&src).expect("ladder parses").to_sequence().expect("ladder is well-formed")
}

/// The ladder workload as a tree.
pub fn ladder_tree(extents: PaperExtents) -> ExprTree {
    ladder_sequence(extents).to_tree().expect("ladder tree builds")
}

#[cfg(test)]
mod ladder_tests {
    use super::*;

    #[test]
    fn ladder_is_a_contraction_tree() {
        let t = ladder_tree(PAPER_EXTENTS);
        assert!(t.is_contraction_tree());
        assert_eq!(t.postorder().iter().filter(|&&n| !t.node(n).is_leaf()).count(), 4);
    }

    #[test]
    fn ladder_tiny_builds() {
        let t = ladder_tree(PaperExtents::tiny());
        assert!(t.total_op_count() > 0);
    }
}

/// The canonical quantum-chemistry pipeline: the four-index integral
/// transformation `B(p,q,r,s) = Σ_{μνλσ} C1(μ,p)C2(ν,q)C3(λ,r)C4(σ,s)
/// A(μ,ν,λ,σ)`, factored into four `O(N^5)` quarter transforms (the
/// textbook rewriting that the operation-minimization line of work
/// generalizes):
///
/// ```text
/// Q1(p,v,l,s) = Σ_u C1(u,p) · A(u,v,l,s)
/// Q2(p,q,l,s) = Σ_v C2(v,q) · Q1(p,v,l,s)
/// Q3(p,q,r,s) = Σ_l C3(l,r) · Q2(p,q,l,s)
/// B(p,q,r,m)  = Σ_s C4(s,m) · Q3(p,q,r,s)
/// ```
pub fn four_index_transform(n_ao: u64, n_mo: u64) -> FormulaSequence {
    let src = format!(
        "range u, v, l, s = {n_ao};\nrange p, q, r, m = {n_mo};\n\
         input A[u,v,l,s];\n\
         input C1[u,p];\ninput C2[v,q];\ninput C3[l,r];\ninput C4[s,m];\n\
         Q1[p,v,l,s] = sum[u] C1[u,p] * A[u,v,l,s];\n\
         Q2[p,q,l,s] = sum[v] C2[v,q] * Q1[p,v,l,s];\n\
         Q3[p,q,r,s] = sum[l] C3[l,r] * Q2[p,q,l,s];\n\
         B[p,q,r,m] = sum[s] C4[s,m] * Q3[p,q,r,s];\n"
    );
    parser::parse(&src).expect("transform parses").to_sequence().expect("transform is well-formed")
}

#[cfg(test)]
mod transform_tests {
    use super::*;

    #[test]
    fn four_index_transform_is_a_contraction_tree() {
        let t = four_index_transform(64, 32).to_tree().unwrap();
        assert!(t.is_contraction_tree());
        // Four quarter transforms at 2·N_ao^4·N_mo, 2·N_ao^3·N_mo^2, … flops.
        let n: u128 = 64;
        let m: u128 = 32;
        let expect =
            2 * (n * n * n * n * m + n * n * n * m * m + n * n * m * m * m + n * m * m * m * m);
        assert_eq!(t.total_op_count(), expect);
    }

    #[test]
    fn transform_tiny_builds() {
        let t = four_index_transform(8, 4).to_tree().unwrap();
        assert_eq!(t.postorder().iter().filter(|&&x| !t.node(x).is_leaf()).count(), 4);
    }
}
