//! Tensors: named multi-dimensional arrays over index variables.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::index::{IndexId, IndexSet, IndexSpace};

/// A named dense array whose dimensions are index variables.
///
/// The dimension *order* matters for printing and for the block layout used
/// by the simulator, but most of the optimization machinery works on the
/// dimension *set* ([`Tensor::dim_set`]).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tensor {
    /// Array name, e.g. `T1`.
    pub name: String,
    /// Ordered dimension indices, e.g. `[b, c, d, f]`.
    pub dims: Vec<IndexId>,
}

impl Tensor {
    /// Create a tensor; panics on a repeated dimension index (the class of
    /// computations in the paper never subscripts an array twice with the
    /// same index — `A(i,i)` diagonals are outside the model).
    pub fn new(name: impl Into<String>, dims: Vec<IndexId>) -> Self {
        let name = name.into();
        let set = IndexSet::from_iter(dims.iter().copied());
        assert_eq!(set.len(), dims.len(), "tensor `{name}` has a repeated dimension index");
        Self { name, dims }
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// The dimensions as a canonical set.
    pub fn dim_set(&self) -> IndexSet {
        IndexSet::from_iter(self.dims.iter().copied())
    }

    /// Whether `id` is a dimension of this tensor.
    pub fn has_dim(&self, id: IndexId) -> bool {
        self.dims.contains(&id)
    }

    /// Position of dimension `id`, if present.
    pub fn dim_position(&self, id: IndexId) -> Option<usize> {
        self.dims.iter().position(|&d| d == id)
    }

    /// Total number of elements (words), e.g. `N_b·N_c·N_d·N_f` for
    /// `T1(b,c,d,f)`.
    pub fn num_elements(&self, space: &IndexSpace) -> u128 {
        space.volume(&self.dims)
    }

    /// Render as `T1(b,c,d,f)` (paper notation).
    pub fn render(&self, space: &IndexSpace) -> String {
        format!("{}({})", self.name, space.render(&self.dims))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.name, self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> (IndexSpace, Vec<IndexId>) {
        let mut sp = IndexSpace::new();
        let ids = ["b", "c", "d", "f"]
            .iter()
            .zip([480u64, 480, 480, 64])
            .map(|(n, e)| sp.declare(n, e))
            .collect();
        (sp, ids)
    }

    #[test]
    fn basics() {
        let (sp, ids) = space();
        let t1 = Tensor::new("T1", ids.clone());
        assert_eq!(t1.arity(), 4);
        assert_eq!(t1.num_elements(&sp), 480u128 * 480 * 480 * 64);
        assert_eq!(t1.render(&sp), "T1(b,c,d,f)");
        assert!(t1.has_dim(ids[0]));
        assert_eq!(t1.dim_position(ids[2]), Some(2));
    }

    #[test]
    fn scalar_tensor() {
        let sp = IndexSpace::new();
        let s = Tensor::new("s", vec![]);
        assert_eq!(s.arity(), 0);
        assert_eq!(s.num_elements(&sp), 1);
        assert_eq!(s.render(&sp), "s()");
    }

    #[test]
    #[should_panic(expected = "repeated dimension")]
    fn repeated_dim_panics() {
        let (_, ids) = space();
        Tensor::new("bad", vec![ids[0], ids[0]]);
    }

    #[test]
    fn dim_set_is_order_independent() {
        let (_, ids) = space();
        let t1 = Tensor::new("X", vec![ids[2], ids[0]]);
        let t2 = Tensor::new("Y", vec![ids[0], ids[2]]);
        assert_eq!(t1.dim_set(), t2.dim_set());
    }
}
