//! Property tests of the expression IR and parser.

use proptest::prelude::*;
use tce_expr::{parse, IndexSet, IndexSpace, Tensor};

/// Strategy: a small set of index names with extents.
fn names() -> Vec<&'static str> {
    vec!["a", "b", "c", "d", "e"]
}

proptest! {
    /// Round trip: a generated single-contraction program parses, builds,
    /// and reports the algebraically correct op count.
    #[test]
    fn parse_roundtrip_single_contraction(
        na in 1u64..9, nb in 1u64..9, nc in 1u64..9,
    ) {
        let src = format!(
            "range a = {na}; range b = {nb}; range c = {nc};\n\
             input A[a,b]; input B[b,c];\n\
             C[a,c] = sum[b] A[a,b] * B[b,c];\n"
        );
        let tree = parse(&src).unwrap().to_sequence().unwrap().to_tree().unwrap();
        prop_assert!(tree.is_contraction_tree());
        prop_assert_eq!(tree.total_op_count(), 2 * u128::from(na * nb * nc));
    }

    /// IndexSet laws: union/intersection/difference behave like sets.
    #[test]
    fn index_set_laws(xs in proptest::collection::vec(0usize..5, 0..8),
                      ys in proptest::collection::vec(0usize..5, 0..8)) {
        let mut sp = IndexSpace::new();
        let ids: Vec<_> = names().iter().map(|n| sp.declare(n, 2)).collect();
        let a: IndexSet = xs.iter().map(|&i| ids[i]).collect();
        let b: IndexSet = ys.iter().map(|&i| ids[i]).collect();
        let u = a.union(&b);
        let n = a.intersection(&b);
        let d = a.difference(&b);
        prop_assert!(a.is_subset(&u) && b.is_subset(&u));
        prop_assert!(n.is_subset(&a) && n.is_subset(&b));
        prop_assert!(d.is_subset(&a) && d.is_disjoint(&b));
        prop_assert_eq!(n.len() + d.len(), a.len());
        prop_assert_eq!(u.len() + n.len(), a.len() + b.len());
    }

    /// Tensor volume is permutation-invariant in its dims.
    #[test]
    fn tensor_volume_permutation_invariant(perm in 0usize..6) {
        let mut sp = IndexSpace::new();
        let i = sp.declare("i", 3);
        let j = sp.declare("j", 5);
        let k = sp.declare("k", 7);
        let orders = [
            vec![i, j, k], vec![i, k, j], vec![j, i, k],
            vec![j, k, i], vec![k, i, j], vec![k, j, i],
        ];
        let t = Tensor::new("T", orders[perm].clone());
        prop_assert_eq!(t.num_elements(&sp), 105);
    }
}

proptest! {
    /// The parser never panics on arbitrary input — it returns errors.
    #[test]
    fn parser_never_panics(src in "[a-z0-9\\[\\]=,;*# \\n]{0,120}") {
        let _ = parse(&src);
    }

    /// Nor on inputs that look *almost* valid.
    #[test]
    fn parser_never_panics_on_near_valid(extent in 0u64..10, dup in proptest::bool::ANY) {
        let dims = if dup { "a,a" } else { "a,b" };
        let src = format!(
            "range a = {extent}; range b = 3;\ninput A[{dims}];\nS[] = sum[a,b] A[{dims}];\n"
        );
        let _ = parse(&src);
    }
}
