//! Whole-program lowering: operation-minimize every big term of a parsed
//! program and splice the results into one formula sequence.

use tce_expr::{ExprError, Formula, FormulaSequence, Program, Statement};

use crate::greedy::greedy_sequence;
use crate::single_term::{minimize_operations, to_sequence};

/// Largest factor count handed to the exact subset DP; bigger terms fall
/// back to the greedy order (still correct, possibly suboptimal).
const EXACT_FACTOR_LIMIT: usize = 16;

/// Lower a program to a validated formula sequence, running the
/// operation-minimization search on every statement with three or more
/// factors. Intermediates introduced by the search are renamed
/// `<result>_tN` to stay unique across terms.
pub fn lower_program(prog: &Program) -> Result<FormulaSequence, ExprError> {
    let mut seq = FormulaSequence::new(prog.space.clone());
    seq.inputs = prog.inputs.clone();
    for st in &prog.statements {
        match st {
            Statement::Formula(f) => seq.formulas.push(f.clone()),
            Statement::BigTerm(term) => {
                let sub = if term.factors.len() <= EXACT_FACTOR_LIMIT {
                    let res = minimize_operations(&prog.space, term);
                    to_sequence(&prog.space, term, &res)?
                } else {
                    greedy_sequence(&prog.space, term)?
                };
                let prefix = format!("{}_", term.result.name);
                for f in sub.formulas {
                    seq.formulas.push(rename(f, &prefix));
                }
            }
        }
    }
    seq.validate()?;
    Ok(seq)
}

fn rename(mut f: Formula, prefix: &str) -> Formula {
    let fix = |s: &mut String| {
        if s.starts_with("_t") {
            *s = format!("{prefix}{}", &s[1..]);
        }
    };
    match &mut f {
        Formula::Mul { result, lhs, rhs } => {
            fix(&mut result.name);
            fix(lhs);
            fix(rhs);
        }
        Formula::Contract { result, lhs, rhs, .. } => {
            fix(&mut result.name);
            fix(lhs);
            fix(rhs);
        }
        Formula::Sum { result, operand, .. } => {
            fix(&mut result.name);
            fix(operand);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_expr::parse;

    #[test]
    fn lowers_the_ccsd_big_term() {
        let src = "\
range a, b, c, d = 40; range e, f = 16; range i, j, k, l = 8;
input A[a,c,i,k]; input B[b,e,f,l]; input C[d,f,j,k]; input D[c,d,e,l];
S[a,b,i,j] = sum[c,d,e,f,k,l] A[a,c,i,k]*B[b,e,f,l]*C[d,f,j,k]*D[c,d,e,l];
";
        let prog = parse(src).unwrap();
        let seq = lower_program(&prog).unwrap();
        assert_eq!(seq.formulas.len(), 3, "four factors → three contractions");
        let tree = seq.to_tree().unwrap();
        assert!(tree.is_contraction_tree());
        // Far fewer flops than direct.
        let direct = prog.big_terms()[0].direct_op_count(&prog.space);
        assert!(tree.total_op_count() * 1000 < direct);
    }

    #[test]
    fn passthrough_formulas_preserved() {
        let src = "\
range i = 4; range j = 4; range k = 4;
input A[i,j]; input B[j,k];
T[i,k] = sum[j] A[i,j] * B[j,k];
S[k] = sum[i] T[i,k];
";
        let prog = parse(src).unwrap();
        let seq = lower_program(&prog).unwrap();
        assert_eq!(seq.formulas.len(), 2);
        assert_eq!(seq.validate().unwrap(), "S");
    }

    #[test]
    fn two_big_terms_get_distinct_intermediates() {
        let src = "\
range i = 4; range j = 4; range k = 4; range l = 4;
input A[i,j]; input B[j,k]; input C[k,l];
X[i,l] = sum[j,k] A[i,j]*B[j,k]*C[k,l];
Y[j,l] = sum[i,k] A[i,j]*B[j,k]*C[k,l];
";
        let prog = parse(src).unwrap();
        let seq = lower_program(&prog).unwrap();
        // Each term contributes its contractions (plus possibly unary
        // pre-summations); intermediate names never collide.
        assert!(seq.formulas.len() >= 4);
        let names: Vec<&str> = seq.formulas.iter().map(|f| f.result().name.as_str()).collect();
        assert!(names.contains(&"X") && names.contains(&"Y"));
        let uniq: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(uniq.len(), names.len(), "no name collisions: {names:?}");
    }
}
