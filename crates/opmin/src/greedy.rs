//! A greedy contraction-order heuristic, for comparison against the exact
//! subset dynamic programming.
//!
//! Repeatedly merges the pair of remaining factors whose contraction is
//! cheapest. This is the classic einsum-style heuristic: fast (O(n³)
//! pair evaluations) and usually good, but not optimal — the ablation
//! (`opmin` bench, `greedy_vs_exact` tests) quantifies the gap that
//! justifies the paper's investment in exact search.

use tce_expr::{ExprError, Formula, FormulaSequence, IndexSet, IndexSpace, SumOfProducts, Tensor};

/// Result of the greedy heuristic.
#[derive(Clone, Debug)]
pub struct GreedyResult {
    /// Total flops of the greedy order (including unary pre-summations).
    pub flops: u128,
    /// Number of pairwise contractions performed.
    pub contractions: usize,
}

/// Dimensions of the intermediate for a working factor, after removing
/// indices that occur nowhere else and not in the result.
fn reduce_dims(
    dims: &IndexSet,
    others: &[IndexSet],
    sum: &IndexSet,
    result: &IndexSet,
) -> IndexSet {
    IndexSet::from_iter(dims.iter().filter(|&d| {
        !sum.contains(d) || result.contains(d) || others.iter().any(|o| o.contains(d))
    }))
}

/// Run the greedy heuristic.
pub fn minimize_operations_greedy(space: &IndexSpace, term: &SumOfProducts) -> GreedyResult {
    let result = term.result.dim_set();
    let mut flops: u128 = 0;
    let mut working: Vec<IndexSet> = term.factors.iter().map(Tensor::dim_set).collect();

    // Unary pre-summations (same treatment as the exact search).
    for i in 0..working.len() {
        let others: Vec<IndexSet> =
            working.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, d)| d.clone()).collect();
        let reduced = reduce_dims(&working[i], &others, &term.sum, &result);
        if reduced != working[i] {
            // One pass per eliminated index, largest extent first.
            let mut dims = working[i].clone();
            let mut elim: Vec<_> = working[i].difference(&reduced).iter().collect();
            elim.sort_by_key(|&d| std::cmp::Reverse(space.extent(d)));
            for d in elim {
                flops += space.volume(dims.as_slice());
                dims.remove(d);
            }
            working[i] = reduced;
        }
    }

    let mut contractions = 0;
    while working.len() > 1 {
        // Pick the cheapest pair.
        let mut best: Option<(u128, usize, usize)> = None;
        for i in 0..working.len() {
            for j in i + 1..working.len() {
                let union = working[i].union(&working[j]);
                let cost = 2 * space.volume(union.as_slice());
                if best.is_none_or(|(c, _, _)| cost < c) {
                    best = Some((cost, i, j));
                }
            }
        }
        let (cost, i, j) = best.expect("at least one pair remains");
        flops += cost;
        contractions += 1;
        let merged_raw = working[i].union(&working[j]);
        let b = working.remove(j);
        let a = working.remove(i);
        let _ = (a, b);
        let others: Vec<IndexSet> = working.clone();
        let merged = reduce_dims(&merged_raw, &others, &term.sum, &result);
        working.push(merged);
    }
    GreedyResult { flops, contractions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_term::minimize_operations;
    use tce_expr::examples::{ccsd_sum_of_products, fig1_sum_of_products, PAPER_EXTENTS};

    #[test]
    fn greedy_never_beats_exact() {
        let (space, term) = ccsd_sum_of_products(PAPER_EXTENTS);
        let exact = minimize_operations(&space, &term);
        let greedy = minimize_operations_greedy(&space, &term);
        assert!(greedy.flops >= exact.flops);
        assert_eq!(greedy.contractions, 3);
    }

    #[test]
    fn greedy_matches_exact_on_fig1() {
        let (space, term) = fig1_sum_of_products(10, 20, 30, 40);
        let exact = minimize_operations(&space, &term);
        let greedy = minimize_operations_greedy(&space, &term);
        assert_eq!(greedy.flops, exact.flops);
    }

    #[test]
    fn greedy_is_suboptimal_on_an_adversarial_chain() {
        // A(i,j) B(j,k) C(k,l) with the *cheapest first pair* being the
        // wrong global choice: make B·C locally cheapest but globally bad.
        let mut sp = IndexSpace::new();
        let i = sp.declare("i", 100);
        let j = sp.declare("j", 2);
        let k = sp.declare("k", 3);
        let l = sp.declare("l", 100);
        let m = sp.declare("m", 2);
        let term = SumOfProducts {
            result: Tensor::new("S", vec![i, m]),
            sum: IndexSet::from_iter([j, k, l]),
            factors: vec![
                Tensor::new("A", vec![i, j]),
                Tensor::new("B", vec![j, k]),
                Tensor::new("C", vec![k, l]),
                Tensor::new("D", vec![l, m]),
            ],
        };
        let exact = minimize_operations(&sp, &term);
        let greedy = minimize_operations_greedy(&sp, &term);
        // Greedy merges B·C first (2·2·3·... cheapest), then faces two
        // 100-extent products; exact pairs (A·B) and (C·D) first.
        assert!(greedy.flops >= exact.flops);
    }
}

/// Lower a term with the greedy order into a [`FormulaSequence`] — the
/// fallback for terms with more factors than the exact subset DP can
/// enumerate. Intermediates are named `_tg0, _tg1, …` (renamed per term by
/// `lower_program`).
pub fn greedy_sequence(
    space: &IndexSpace,
    term: &SumOfProducts,
) -> Result<FormulaSequence, ExprError> {
    let result_dims = term.result.dim_set();
    let mut seq = FormulaSequence::new(space.clone());
    seq.inputs = term.factors.clone();
    let mut counter = 0usize;

    // Working factors: (name, reduced dim set).
    let mut working: Vec<(String, IndexSet)> = Vec::new();
    for (i, f) in term.factors.iter().enumerate() {
        let others: Vec<IndexSet> = term
            .factors
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, o)| o.dim_set())
            .collect();
        let reduced = reduce_dims(&f.dim_set(), &others, &term.sum, &result_dims);
        let mut name = f.name.clone();
        if reduced != f.dim_set() {
            // Emit the unary summation chain, largest extent first.
            let mut dims = f.dim_set();
            let mut elim: Vec<_> = f.dim_set().difference(&reduced).iter().collect();
            elim.sort_by_key(|&d| std::cmp::Reverse(space.extent(d)));
            for d in elim {
                dims.remove(d);
                let out = format!("_tg{counter}");
                counter += 1;
                seq.formulas.push(Formula::Sum {
                    result: Tensor::new(out.clone(), dims.iter().collect()),
                    operand: name.clone(),
                    sum: d,
                });
                name = out;
            }
        }
        working.push((name, reduced));
    }

    while working.len() > 1 {
        // Cheapest pair first.
        let mut best: Option<(u128, usize, usize)> = None;
        for i in 0..working.len() {
            for j in i + 1..working.len() {
                let union = working[i].1.union(&working[j].1);
                let cost = 2 * space.volume(union.as_slice());
                if best.is_none_or(|(c, _, _)| cost < c) {
                    best = Some((cost, i, j));
                }
            }
        }
        let (_, i, j) = best.expect("at least one pair remains");
        let (bname, bdims) = working.remove(j);
        let (aname, adims) = working.remove(i);
        let raw = adims.union(&bdims);
        let others: Vec<IndexSet> = working.iter().map(|(_, d)| d.clone()).collect();
        let merged = reduce_dims(&raw, &others, &term.sum, &result_dims);
        let sum_here = raw.difference(&merged);
        let out = if working.is_empty() {
            term.result.name.clone()
        } else {
            let n = format!("_tg{counter}");
            counter += 1;
            n
        };
        let result = Tensor::new(out.clone(), merged.iter().collect());
        if sum_here.is_empty() {
            seq.formulas.push(Formula::Mul { result, lhs: aname, rhs: bname });
        } else {
            seq.formulas.push(Formula::Contract { result, lhs: aname, rhs: bname, sum: sum_here });
        }
        working.push((out, merged));
    }
    seq.validate()?;
    Ok(seq)
}

#[cfg(test)]
mod sequence_tests {
    use super::*;
    use tce_expr::examples::{ccsd_sum_of_products, PAPER_EXTENTS};

    #[test]
    fn greedy_sequence_matches_greedy_flops() {
        let (space, term) = ccsd_sum_of_products(PAPER_EXTENTS);
        let seq = greedy_sequence(&space, &term).unwrap();
        let tree = seq.to_tree().unwrap();
        let greedy = minimize_operations_greedy(&space, &term);
        assert_eq!(tree.total_op_count(), greedy.flops);
        assert_eq!(tree.node(tree.root()).tensor.name, "S");
    }

    #[test]
    fn greedy_sequence_handles_many_factors() {
        // A 24-factor matrix chain: beyond the exact DP's mask width.
        let mut sp = IndexSpace::new();
        let ids: Vec<_> =
            (0..=24).map(|i| sp.declare(&format!("i{i}"), 2 + (i as u64 % 5))).collect();
        let factors: Vec<Tensor> =
            (0..24).map(|i| Tensor::new(format!("A{i}"), vec![ids[i], ids[i + 1]])).collect();
        let term = SumOfProducts {
            result: Tensor::new("S", vec![ids[0], ids[24]]),
            sum: IndexSet::from_iter(ids[1..24].iter().copied()),
            factors,
        };
        let seq = greedy_sequence(&sp, &term).unwrap();
        assert_eq!(seq.formulas.len(), 23);
        assert!(seq.to_tree().unwrap().is_contraction_tree());
    }
}
