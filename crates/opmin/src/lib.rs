//! # tce-opmin — operation minimization
//!
//! The algebraic front end of the IPPS 2003 reproduction (the paper's
//! ref \[13\]): given a term `result = Σ f1 × … × fn`, choose the binary
//! order of pairwise contractions minimizing flop count. The problem is
//! NP-complete; for practical term sizes an exact subset dynamic
//! programming (equivalent in results to the paper's pruning search) is
//! fast. Reproduces the §2 rewriting of the four-factor term from `4N^10`
//! direct flops to the `Θ(N^6)` tree of Fig. 2(a).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::panic))]

mod greedy;
mod program;
mod single_term;

pub use greedy::{greedy_sequence, minimize_operations_greedy, GreedyResult};
pub use program::lower_program;
pub use single_term::{minimize_operations, to_sequence, OpMinResult, Pairing};
