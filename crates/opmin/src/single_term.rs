//! Operation minimization for a single multi-tensor term (paper ref [13]).
//!
//! Given `result = Σ_sum f1 × f2 × … × fn`, choose a binary order of
//! pairwise contractions (with each summation index applied as early as
//! possible) minimizing total flops. Determining the optimal order is
//! NP-complete in general; for the term sizes that occur in practice
//! (≤ ~8 factors) an exact dynamic programming over factor subsets is
//! entirely tractable and reproduces the pruning search's answers.
//!
//! The classic example from §2: evaluated directly, the four-factor
//! ten-index term costs `4N^10`; the optimal tree costs `Θ(N^6)`.

use std::collections::HashMap;

use tce_expr::{ExprError, Formula, FormulaSequence, IndexId, IndexSet, IndexSpace};
use tce_expr::{SumOfProducts, Tensor};

/// One pairwise contraction chosen by the optimizer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pairing {
    /// Factor-set bitmask of the left operand.
    pub left: u32,
    /// Factor-set bitmask of the right operand.
    pub right: u32,
    /// Indices summed at this node.
    pub sum: IndexSet,
    /// The intermediate produced.
    pub tensor: Tensor,
}

/// The optimized decomposition of one term.
#[derive(Clone, Debug)]
pub struct OpMinResult {
    /// Flops of the optimal binary contraction order.
    pub flops: u128,
    /// Flops of the direct (single loop nest) evaluation, for the paper's
    /// `4N^10` vs `6N^6` comparison.
    pub direct_flops: u128,
    /// The chosen pairwise contractions, in dependency order.
    pub pairings: Vec<Pairing>,
}

/// Which summation indices can be eliminated once the factor set `mask` has
/// been multiplied together: those appearing in no other factor and not in
/// the result.
fn eliminable(mask: u32, factors: &[Tensor], sum: &IndexSet, result_dims: &IndexSet) -> IndexSet {
    let mut outside = result_dims.clone();
    for (i, f) in factors.iter().enumerate() {
        if mask & (1 << i) == 0 {
            outside = outside.union(&f.dim_set());
        }
    }
    IndexSet::from_iter(sum.iter().filter(|&s| !outside.contains(s) && covered(mask, factors, s)))
}

/// Order in which a factor's eliminable indices are summed away:
/// decreasing extent (cheapest chain).
fn reduction_order(space: &IndexSpace, elim: &IndexSet) -> Vec<IndexId> {
    let mut order: Vec<IndexId> = elim.iter().collect();
    order.sort_by_key(|&i| std::cmp::Reverse(space.extent(i)));
    order
}

/// Flops of the unary summation chain removing `elim` from `factor`.
fn reduction_chain_cost(space: &IndexSpace, factor: &Tensor, elim: &IndexSet) -> u128 {
    let mut vol = space.volume(&factor.dims);
    let mut cost = 0u128;
    for id in reduction_order(space, elim) {
        cost += vol;
        vol /= space.extent(id) as u128;
    }
    cost
}

fn covered(mask: u32, factors: &[Tensor], s: IndexId) -> bool {
    factors.iter().enumerate().any(|(i, f)| mask & (1 << i) != 0 && f.has_dim(s))
}

/// The index set of the intermediate for factor set `mask`: union of its
/// factors' dims minus the already-eliminated summation indices.
fn subset_dims(mask: u32, factors: &[Tensor], sum: &IndexSet, result_dims: &IndexSet) -> IndexSet {
    let mut dims = IndexSet::new();
    for (i, f) in factors.iter().enumerate() {
        if mask & (1 << i) != 0 {
            dims = dims.union(&f.dim_set());
        }
    }
    dims.difference(&eliminable(mask, factors, sum, result_dims))
}

/// Exact subset dynamic programming over contraction orders.
pub fn minimize_operations(space: &IndexSpace, term: &SumOfProducts) -> OpMinResult {
    let n = term.factors.len();
    assert!((1..=20).contains(&n), "term must have 1..=20 factors");
    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    let result_dims = term.result.dim_set();

    // best[mask] = (flops to produce the subset's intermediate, split).
    // A singleton whose factor carries eliminable indices pays for the
    // unary summation chain that removes them (Fig. 1's `T1 = Σ_i A`),
    // eliminating larger extents first (the cheapest chain order).
    let mut best: BestTable = HashMap::new();
    for i in 0..n {
        let mask = 1u32 << i;
        let elim = eliminable(mask, &term.factors, &term.sum, &result_dims);
        let cost = reduction_chain_cost(space, &term.factors[i], &elim);
        best.insert(mask, (cost, None));
    }
    // Enumerate masks in increasing popcount order.
    let mut masks: Vec<u32> = (1..=full).filter(|m| m.count_ones() >= 2).collect();
    masks.sort_by_key(|m| m.count_ones());
    for &mask in &masks {
        let dims_here = subset_dims(mask, &term.factors, &term.sum, &result_dims);
        let elim = eliminable(mask, &term.factors, &term.sum, &result_dims);
        let mut entry: Option<(u128, (u32, u32))> = None;
        // All 2-partitions of mask (canonical: left contains lowest bit).
        let low = mask & mask.wrapping_neg();
        let rest = mask ^ low;
        let mut sub = rest;
        loop {
            let left = low | sub;
            let right = mask ^ left;
            if right != 0 {
                if let (Some(&(lc, _)), Some(&(rc, _))) = (best.get(&left), best.get(&right)) {
                    // Multiply-add over the union of the operand index
                    // sets (2 flops per point when something is summed).
                    let ldims = subset_dims(left, &term.factors, &term.sum, &result_dims);
                    let rdims = subset_dims(right, &term.factors, &term.sum, &result_dims);
                    let loop_set = ldims.union(&rdims);
                    let per_point: u128 =
                        if elim.is_empty() && dims_here == loop_set { 1 } else { 2 };
                    let cost = lc + rc + per_point * space.volume(loop_set.as_slice());
                    if entry.is_none_or(|(c, _)| cost < c) {
                        entry = Some((cost, (left, right)));
                    }
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        let (cost, split) = entry.expect("every mask has a partition");
        best.insert(mask, (cost, Some(split)));
    }

    // Reconstruct pairings.
    let mut pairings = Vec::new();
    let mut counter = 0usize;
    build(full, &best, term, &result_dims, &mut counter, &mut pairings);
    OpMinResult { flops: best[&full].0, direct_flops: term.direct_op_count(space), pairings }
}

/// DP table: per factor-subset mask, its optimal cost and split.
type BestTable = HashMap<u32, (u128, Option<(u32, u32)>)>;

fn build(
    mask: u32,
    best: &BestTable,
    term: &SumOfProducts,
    result_dims: &IndexSet,
    counter: &mut usize,
    out: &mut Vec<Pairing>,
) {
    let Some((left, right)) = best[&mask].1 else { return };
    build(left, best, term, result_dims, counter, out);
    build(right, best, term, result_dims, counter, out);
    let ldims = subset_dims(left, &term.factors, &term.sum, result_dims);
    let rdims = subset_dims(right, &term.factors, &term.sum, result_dims);
    let elim =
        eliminable(mask, &term.factors, &term.sum, result_dims).intersection(&ldims.union(&rdims));
    let dims = subset_dims(mask, &term.factors, &term.sum, result_dims);
    *counter += 1;
    let full_mask = (1u32 << term.factors.len()) - 1;
    let name = if mask == full_mask { term.result.name.clone() } else { format!("_t{counter}") };
    out.push(Pairing { left, right, sum: elim, tensor: Tensor::new(name, dims.iter().collect()) });
}

/// Lower an optimized term into a [`FormulaSequence`] whose contractions
/// follow the chosen order.
pub fn to_sequence(
    space: &IndexSpace,
    term: &SumOfProducts,
    res: &OpMinResult,
) -> Result<FormulaSequence, ExprError> {
    let mut seq = FormulaSequence::new(space.clone());
    seq.inputs = term.factors.clone();
    let result_dims = term.result.dim_set();
    let mut name_of: HashMap<u32, String> = HashMap::new();
    // Unary summation chains for factors with privately held summation
    // indices (Fig. 1's `T1 = Σ_i A`), largest extent first.
    for (i, f) in term.factors.iter().enumerate() {
        let mask = 1u32 << i;
        let elim = eliminable(mask, &term.factors, &term.sum, &result_dims);
        let mut current = f.name.clone();
        let mut remaining = f.dim_set();
        let order = reduction_order(space, &elim);
        for (m, id) in order.iter().copied().enumerate() {
            remaining.remove(id);
            // A single-factor term's last reduction *is* the result.
            let name = if term.factors.len() == 1 && m + 1 == order.len() {
                term.result.name.clone()
            } else {
                format!("_tr{i}_{m}")
            };
            seq.formulas.push(Formula::Sum {
                result: Tensor::new(name.clone(), remaining.iter().collect()),
                operand: current,
                sum: id,
            });
            current = name;
        }
        name_of.insert(mask, current);
    }
    for p in &res.pairings {
        let lhs = name_of[&p.left].clone();
        let rhs = name_of[&p.right].clone();
        name_of.insert(p.left | p.right, p.tensor.name.clone());
        if p.sum.is_empty() {
            seq.formulas.push(Formula::Mul { result: p.tensor.clone(), lhs, rhs });
        } else {
            seq.formulas.push(Formula::Contract {
                result: p.tensor.clone(),
                lhs,
                rhs,
                sum: p.sum.clone(),
            });
        }
    }
    seq.validate()?;
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_expr::examples::{ccsd_sum_of_products, fig1_sum_of_products, PAPER_EXTENTS};

    #[test]
    fn ccsd_term_reaches_theta_n6() {
        let (space, term) = ccsd_sum_of_products(PAPER_EXTENTS);
        let res = minimize_operations(&space, &term);
        // Direct: 4·N_aN_bN_cN_d·N_eN_f·N_iN_jN_kN_l ≈ 9.1e20.
        assert_eq!(res.direct_flops, 4 * 480u128.pow(4) * 64u128.pow(2) * 32u128.pow(4));
        // The paper's tree costs 2·480³(64²·32 + 64·32² + 32³) ≈ 5.07e13;
        // the optimizer must do at least as well.
        let paper_tree = 2 * 480u128.pow(3) * (64 * 64 * 32 + 64 * 32 * 32 + 32u128.pow(3));
        assert!(res.flops <= paper_tree, "{} > {}", res.flops, paper_tree);
        // And improve on direct by ~7 orders of magnitude.
        assert!(res.direct_flops / res.flops > 10u128.pow(6));
        assert_eq!(res.pairings.len(), 3);
    }

    #[test]
    fn ccsd_sequence_round_trips_to_contraction_tree() {
        let (space, term) = ccsd_sum_of_products(PAPER_EXTENTS);
        let res = minimize_operations(&space, &term);
        let seq = to_sequence(&space, &term, &res).unwrap();
        let tree = seq.to_tree().unwrap();
        assert!(tree.is_contraction_tree());
        assert_eq!(tree.total_op_count(), res.flops);
        assert_eq!(tree.node(tree.root()).tensor.name, "S");
    }

    #[test]
    fn fig1_term_reaches_paper_formula() {
        // §2: the factored form costs N_iN_jN_t + N_jN_kN_t + 2N_jN_t.
        let (space, term) = fig1_sum_of_products(10, 20, 30, 40);
        let res = minimize_operations(&space, &term);
        assert_eq!(res.flops, 10 * 20 * 40 + 20 * 30 * 40 + 2 * 20 * 40);
        assert!(res.flops < res.direct_flops);
        assert_eq!(res.pairings.len(), 1);
        let seq = to_sequence(&space, &term, &res).unwrap();
        assert_eq!(seq.validate().unwrap(), "S");
        // 2 unary summations + 1 contraction; tree op count agrees with
        // the optimizer's ledger.
        assert_eq!(seq.formulas.len(), 3);
        let tree = seq.to_tree().unwrap();
        assert_eq!(tree.total_op_count(), res.flops);
    }

    #[test]
    fn matrix_chain_matches_classic_dp() {
        // (A·B)·C vs A·(B·C) with shapes 2×100, 100×3, 3×50:
        // classic matrix-chain says (A·B)·C first: 2·100·3 + 2·3·50 muls.
        let mut sp = IndexSpace::new();
        let i = sp.declare("i", 2);
        let j = sp.declare("j", 100);
        let k = sp.declare("k", 3);
        let l = sp.declare("l", 50);
        let term = SumOfProducts {
            result: Tensor::new("S", vec![i, l]),
            sum: IndexSet::from_iter([j, k]),
            factors: vec![
                Tensor::new("A", vec![i, j]),
                Tensor::new("B", vec![j, k]),
                Tensor::new("C", vec![k, l]),
            ],
        };
        let res = minimize_operations(&sp, &term);
        assert_eq!(res.flops, 2 * (2 * 100 * 3) + 2 * (2 * 3 * 50));
        // First pairing must combine A and B (masks 0b001 and 0b010).
        assert_eq!(res.pairings[0].left | res.pairings[0].right, 0b011);
    }

    #[test]
    fn single_factor_term() {
        let mut sp = IndexSpace::new();
        let i = sp.declare("i", 4);
        let j = sp.declare("j", 5);
        let term = SumOfProducts {
            result: Tensor::new("S", vec![j]),
            sum: IndexSet::from_iter([i]),
            factors: vec![Tensor::new("A", vec![i, j])],
        };
        let res = minimize_operations(&sp, &term);
        // The unary summation itself costs N_i·N_j flops.
        assert_eq!(res.flops, 20);
        assert!(res.pairings.is_empty());
        let seq = to_sequence(&sp, &term, &res).unwrap();
        assert_eq!(seq.validate().unwrap(), "S");
        assert_eq!(seq.to_tree().unwrap().total_op_count(), res.flops);
    }

    #[test]
    fn eliminable_respects_result_and_other_factors() {
        let (space, term) = ccsd_sum_of_products(PAPER_EXTENTS);
        let rd = term.result.dim_set();
        // Factor set {B, D} (B=mask for B's position). Find positions.
        let pos = |name: &str| term.factors.iter().position(|f| f.name == name).unwrap() as u32;
        let mask = (1 << pos("B")) | (1 << pos("D"));
        let elim = eliminable(mask, &term.factors, &term.sum, &rd);
        // B(b,e,f,l)·D(c,d,e,l): e and l appear nowhere else -> eliminated.
        let names: Vec<&str> = elim.iter().map(|i| space.name(i)).collect();
        assert_eq!(names, vec!["e", "l"]);
    }
}
