//! Computation time model.
//!
//! Loop fusion never changes the arithmetic operation count (§2), so the
//! compute side of a plan is simply the tree's flops divided evenly over
//! the processors at the machine's sustained rate. This is what turns the
//! optimizer's communication costs into the paper's headline percentages
//! (98.0 s = 7.0 % of 1403.4 s, etc.).

use tce_expr::ExprTree;

use crate::machine::MachineModel;

/// Seconds of computation for the whole tree on `procs` processors.
pub fn tree_compute_time(tree: &ExprTree, procs: u32, machine: &MachineModel) -> f64 {
    machine.compute_time(tree.total_op_count() as f64 / procs as f64)
}

/// Seconds of computation for a single node on `procs` processors.
pub fn node_compute_time(
    tree: &ExprTree,
    node: tce_expr::NodeId,
    procs: u32,
    machine: &MachineModel,
) -> f64 {
    machine.compute_time(tree.node_op_count(node) as f64 / procs as f64)
}

/// A total-runtime summary in the style of §4's headline numbers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuntimeSummary {
    /// Total communication seconds.
    pub comm_s: f64,
    /// Total computation seconds.
    pub compute_s: f64,
}

impl RuntimeSummary {
    /// Total running time.
    pub fn total_s(&self) -> f64 {
        self.comm_s + self.compute_s
    }

    /// Fraction of the running time spent communicating, in percent.
    pub fn comm_percent(&self) -> f64 {
        100.0 * self.comm_s / self.total_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tce_expr::examples::{ccsd_tree, PAPER_EXTENTS};

    #[test]
    fn paper_compute_times_within_5_percent() {
        let tree = ccsd_tree(PAPER_EXTENTS);
        let m = MachineModel::itanium_cluster();
        // 64 procs: 1403.4 − 98.0 = 1305.4 s of compute.
        let t64 = tree_compute_time(&tree, 64, &m);
        assert!((t64 - 1305.4).abs() / 1305.4 < 0.05, "{t64:.0}");
        // 16 procs: 6983.8 − 1907.8 = 5076.0 s.
        let t16 = tree_compute_time(&tree, 16, &m);
        assert!((t16 - 5076.0).abs() / 5076.0 < 0.05, "{t16:.0}");
        // Per-node times sum to the tree time.
        let per: f64 =
            tree.postorder().into_iter().map(|id| node_compute_time(&tree, id, 64, &m)).sum();
        assert!((per - t64).abs() < 1e-6);
    }

    #[test]
    fn summary_percentages() {
        let s = RuntimeSummary { comm_s: 98.0, compute_s: 1305.4 };
        assert!((s.total_s() - 1403.4).abs() < 1e-9);
        assert!((s.comm_percent() - 7.0).abs() < 0.02);
        let s2 = RuntimeSummary { comm_s: 1907.8, compute_s: 5076.0 };
        assert!((s2.comm_percent() - 27.3).abs() < 0.05);
    }
}
