//! Machine models.
//!
//! The paper evaluates on an Intel Itanium cluster (2 processors/node,
//! 4 GB/node) whose communication behaviour it captures *empirically* in a
//! characterization file. Lacking that cluster, we model a processor's
//! effective point-to-point bandwidth with a saturating curve
//!
//! ```text
//! eff_bw(s) = B_max · s / (s + s_half)
//! ```
//!
//! (small messages see poor bandwidth, large messages approach `B_max`)
//! plus a per-message latency. The three model parameters and the sustained
//! flop rate are **calibrated against the paper's own Tables 1–2**: with
//! `B_max = 14 MB/s`, `s_half = 0.9 MB`, `latency = 1 ms`, and
//! `616 Mflop/s` per processor, every per-array rotation cost in both
//! tables is reproduced within ~15 % and most within 5 % (see
//! EXPERIMENTS.md for the full comparison).

use serde::{Deserialize, Serialize};

use crate::units::PAPER_MB;

/// A homogeneous cluster model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Human-readable name, recorded in characterization files.
    pub name: String,
    /// Per-message start-up cost in seconds.
    pub latency_s: f64,
    /// Asymptotic per-processor bandwidth in bytes/second.
    pub peak_bandwidth: f64,
    /// Message size (bytes) at which effective bandwidth is half of peak.
    pub half_saturation_bytes: f64,
    /// Sustained double-precision flop rate per processor.
    pub flops_per_proc: f64,
    /// Physical memory per *node* in bytes.
    pub mem_per_node_bytes: u64,
    /// Processors per node (2 on the paper's Itanium cluster).
    pub procs_per_node: u32,
    /// Message size (bytes) at which the transport switches from the eager
    /// to the rendezvous protocol, adding a handshake round-trip — the
    /// classic MPI knee that makes measured message time *non-affine* in
    /// size (and the reason empirical characterization with interpolation,
    /// rather than a two-parameter fit, is worth the trouble). `f64::MAX`
    /// disables it.
    pub rendezvous_cutover_bytes: f64,
    /// Extra latency paid per message at and above the cutover.
    pub rendezvous_extra_latency_s: f64,
    /// Bandwidth multiplier for links along grid dimension 2 relative to
    /// dimension 1 (1.0 = symmetric torus). Clusters whose logical grid
    /// maps rows to intra-node/intra-switch links are faster along one
    /// dimension; this is why the paper characterizes `RCost` per
    /// *position* of the rotation index, not just per message size.
    pub dim2_bandwidth_factor: f64,
}

impl MachineModel {
    /// The calibrated stand-in for the paper's Itanium cluster.
    pub fn itanium_cluster() -> Self {
        MachineModel {
            name: "itanium-cluster-2003 (calibrated)".into(),
            latency_s: 1.0e-3,
            peak_bandwidth: 14.0 * 1e6,
            half_saturation_bytes: 0.9 * 1e6,
            flops_per_proc: 616.0e6,
            // "4GB of memory available at each node" (§4).
            mem_per_node_bytes: (4.0 * 1024.0 * PAPER_MB) as u64,
            procs_per_node: 2,
            rendezvous_cutover_bytes: 64.0 * 1024.0,
            rendezvous_extra_latency_s: 2.0e-3,
            dim2_bandwidth_factor: 1.0,
        }
    }

    /// A modern-ish commodity cluster, for sensitivity studies: 5 GB/s,
    /// 5 µs latency, 8 Gflop/s, 64 GiB per 16-processor node.
    pub fn modern_cluster() -> Self {
        MachineModel {
            name: "commodity-cluster-modern".into(),
            latency_s: 5.0e-6,
            peak_bandwidth: 5.0e9,
            half_saturation_bytes: 64.0 * 1024.0,
            flops_per_proc: 8.0e9,
            mem_per_node_bytes: 64 * 1024 * 1024 * 1024,
            procs_per_node: 16,
            rendezvous_cutover_bytes: 16.0 * 1024.0,
            rendezvous_extra_latency_s: 10.0e-6,
            dim2_bandwidth_factor: 1.0,
        }
    }

    /// An asymmetric variant of the Itanium stand-in whose grid dimension 2
    /// maps to links `factor`× faster than dimension 1 (e.g. intra-switch
    /// vs inter-switch). Exercises the per-dimension `RCost`
    /// characterization of §3.3.
    pub fn itanium_asymmetric(factor: f64) -> Self {
        assert!(factor > 0.0);
        MachineModel {
            name: format!("itanium-cluster-2003 (dim2 x{factor})"),
            dim2_bandwidth_factor: factor,
            ..Self::itanium_cluster()
        }
    }

    /// Effective bandwidth for a message traveling along grid dimension 2.
    pub fn eff_bandwidth_dim2(&self, bytes: f64) -> f64 {
        self.eff_bandwidth(bytes) * self.dim2_bandwidth_factor
    }

    /// Message time along grid dimension 2.
    pub fn msg_time_dim2(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let rendezvous = if bytes >= self.rendezvous_cutover_bytes {
            self.rendezvous_extra_latency_s
        } else {
            0.0
        };
        self.latency_s + rendezvous + bytes / self.eff_bandwidth_dim2(bytes)
    }

    /// Effective bandwidth (bytes/s) for a message of `bytes`.
    pub fn eff_bandwidth(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return f64::MIN_POSITIVE;
        }
        self.peak_bandwidth * bytes / (bytes + self.half_saturation_bytes)
    }

    /// Time to transfer one message of `bytes` between neighbors.
    pub fn msg_time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let rendezvous = if bytes >= self.rendezvous_cutover_bytes {
            self.rendezvous_extra_latency_s
        } else {
            0.0
        };
        self.latency_s + rendezvous + bytes / self.eff_bandwidth(bytes)
    }

    /// Memory available per processor, in bytes.
    pub fn mem_per_proc_bytes(&self) -> u64 {
        self.mem_per_node_bytes / u64::from(self.procs_per_node)
    }

    /// Memory available per processor, in 8-byte words.
    pub fn mem_per_proc_words(&self) -> u128 {
        u128::from(self.mem_per_proc_bytes()) / crate::units::WORD_BYTES
    }

    /// Time for `flops` floating-point operations on one processor.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.flops_per_proc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eff_bandwidth_saturates() {
        let m = MachineModel::itanium_cluster();
        let small = m.eff_bandwidth(1e3);
        let mid = m.eff_bandwidth(0.9e6);
        let big = m.eff_bandwidth(1e9);
        assert!(small < mid && mid < big);
        assert!((mid - 7.0e6).abs() < 1e4, "half saturation at s_half");
        assert!(big > 13.9e6 && big < 14.0e6);
    }

    #[test]
    fn msg_time_monotone_in_size() {
        let m = MachineModel::itanium_cluster();
        let mut prev = 0.0;
        for bytes in [0.0, 1e3, 1e5, 1e6, 1e7, 1e8] {
            let t = m.msg_time(bytes);
            assert!(t >= prev);
            prev = t;
        }
        assert_eq!(m.msg_time(0.0), 0.0);
    }

    #[test]
    fn table1_rotation_costs_reproduced_within_15_percent() {
        // Full rotation of a block = √P messages of the whole local block.
        // (localsize words, paper's measured seconds), 8 steps.
        let m = MachineModel::itanium_cluster();
        let cases = [
            (7_372_800u64, 35.7), // D
            (983_040, 4.9),       // B
            (491_520, 2.8),       // C
            (3_686_400, 18.3),    // A
            (3_686_400, 18.5),    // T2 (final)
        ];
        for (words, paper) in cases {
            let t = 8.0 * m.msg_time(words as f64 * 8.0);
            let rel = (t - paper).abs() / paper;
            assert!(rel < 0.15, "{words} words: model {t:.1}s vs paper {paper}s");
        }
    }

    #[test]
    fn table2_fused_rotation_costs_reproduced_within_15_percent() {
        // 4 steps per rotation, repeated Nf = 64 times for fused arrays.
        let m = MachineModel::itanium_cluster();
        let cases = [
            (61_440u64, 64.0, 25.7),  // B sliced by f
            (30_720, 64.0, 20.8),     // C sliced by f
            (6_912_000, 64.0, 902.0), // T1(b,c,d), re-rotated per f
            (14_745_600, 1.0, 34.6),  // A, unfused
            (14_745_600, 1.0, 36.2),  // T2, unfused
        ];
        for (words, factor, paper) in cases {
            let t = factor * 4.0 * m.msg_time(words as f64 * 8.0);
            let rel = (t - paper).abs() / paper;
            assert!(rel < 0.15, "{words} words ×{factor}: model {t:.1}s vs paper {paper}s");
        }
    }

    #[test]
    fn compute_rate_reproduces_paper_totals() {
        // §4 headline totals: 64 procs → 1403.4 s (7.0 % comm);
        // 16 procs → 6983.8 s (27.3 % comm). The implied sustained rates
        // are 607 and 625 Mflop/s; our 616 Mflop/s sits between.
        let m = MachineModel::itanium_cluster();
        let flops =
            2.0 * 480.0_f64.powi(3) * (64.0 * 64.0 * 32.0 + 64.0 * 32.0 * 32.0 + 32.0f64.powi(3));
        let t64 = m.compute_time(flops / 64.0) + 98.0;
        let t16 = m.compute_time(flops / 16.0) + 1907.8;
        assert!((t64 - 1403.4).abs() / 1403.4 < 0.05, "64-proc total {t64:.0}");
        assert!((t16 - 6983.8).abs() / 6983.8 < 0.08, "16-proc total {t16:.0}");
    }

    #[test]
    fn memory_limits() {
        let m = MachineModel::itanium_cluster();
        assert_eq!(m.mem_per_proc_bytes(), (2.0 * 1024.0 * PAPER_MB) as u64);
        assert_eq!(m.mem_per_proc_words(), (2.0 * 1024.0 * PAPER_MB) as u128 / 8);
    }
}
