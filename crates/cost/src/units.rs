//! The paper's memory units.
//!
//! Tables 1–2 of the paper report sizes in a quirky convention,
//! reverse-engineered from the exact values they print:
//! `1 "MB" = 1,024,000 bytes` and `1 "GB" = 1000 "MB"`. For example
//! `T1(b,c,d,f)` holds `480³·64 = 7,077,888,000` words of 8 bytes →
//! `56,623,104,000 B / (1000·1,024,000) = 55.296` → the paper's "55.3GB".
//! We reproduce the convention so that the regenerated tables match the
//! paper digit for digit, and also provide plain decimal formatting.

/// Bytes per double-precision word.
pub const WORD_BYTES: u128 = 8;

/// The paper's "MB": 1,024,000 bytes.
pub const PAPER_MB: f64 = 1_024_000.0;

/// The paper's "GB": 1000 of its MB (i.e. 1.024 × 10⁹ bytes).
pub const PAPER_GB: f64 = 1000.0 * PAPER_MB;

/// Bytes occupied by `words` double-precision elements.
pub fn words_to_bytes(words: u128) -> u128 {
    words * WORD_BYTES
}

/// Format a byte count in the paper's units, picking MB or GB like the
/// paper does (`"115.2MB"`, `"1.728GB"`).
pub fn fmt_paper_bytes(bytes: u128) -> String {
    let b = bytes as f64;
    if b >= PAPER_GB {
        format!("{:.3}GB", b / PAPER_GB)
    } else {
        format!("{:.1}MB", b / PAPER_MB)
    }
}

/// Format a word count in the paper's units.
pub fn fmt_paper_words(words: u128) -> String {
    fmt_paper_bytes(words_to_bytes(words))
}

/// Format a byte count in decimal megabytes/gigabytes for modern eyes.
pub fn fmt_decimal_bytes(bytes: u128) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else {
        format!("{:.1} kB", b / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_memory_cells_reproduce() {
        // Per-node sizes in Table 1 are 2 processors × DistSize × 8 B.
        // D(c,d,e,l) at <d,e> on 8×8: 7,372,800 words/proc.
        assert_eq!(fmt_paper_bytes(words_to_bytes(2 * 7_372_800)), "115.2MB");
        // B: 983,040 words/proc → 15.4MB/node.
        assert_eq!(fmt_paper_bytes(words_to_bytes(2 * 983_040)), "15.4MB");
        // C: 491,520 words/proc → 7.7MB/node.
        assert_eq!(fmt_paper_bytes(words_to_bytes(2 * 491_520)), "7.7MB");
        // A and T2: 3,686,400 words/proc → 57.6MB/node.
        assert_eq!(fmt_paper_bytes(words_to_bytes(2 * 3_686_400)), "57.6MB");
        // T1: 110,592,000 words/proc → 1.728GB/node.
        assert_eq!(fmt_paper_bytes(words_to_bytes(2 * 110_592_000)), "1.728GB");
    }

    #[test]
    fn table2_memory_cells_reproduce() {
        // 4×4 grid, 2 procs/node.
        assert_eq!(fmt_paper_bytes(words_to_bytes(2 * 29_491_200)), "460.8MB"); // D
        assert_eq!(fmt_paper_bytes(words_to_bytes(2 * 3_932_160)), "61.4MB"); // B (paper: 61.6)
        assert_eq!(fmt_paper_bytes(words_to_bytes(2 * 14_745_600)), "230.4MB"); // A, T2, S
                                                                                // T1 reduced to (b,c,d): 6,912,000 words/proc → 108MB/node.
        assert_eq!(fmt_paper_bytes(words_to_bytes(2 * 6_912_000)), "108.0MB");
    }

    #[test]
    fn t1_total_is_55_3_gb() {
        let words: u128 = 480 * 480 * 480 * 64;
        assert_eq!(fmt_paper_words(words), "55.296GB");
    }

    #[test]
    fn decimal_formatting() {
        assert_eq!(fmt_decimal_bytes(58_982_400), "58.98 MB");
        assert_eq!(fmt_decimal_bytes(1_500), "1.5 kB");
        assert_eq!(fmt_decimal_bytes(2_000_000_000), "2.00 GB");
    }
}
