//! Communication and memory lower bounds for whole expression trees.
//!
//! Per-node floors in the spirit of the communication lower-bound
//! literature (Solomonik–Demmel–Hoefler, arXiv 1707.04618; Al Daas et
//! al., arXiv 2207.10437), specialized to the §3.2 Cannon/redistribution
//! cost model this repository prices plans with. Rather than a generic
//! `Ω(flops/√M)` volume bound — which the paper's empirical `RCost`
//! tables cannot be compared against — each floor is the *exact minimum
//! of the same kernel the optimizer charges*, taken over a **superset**
//! of the configurations the search can reach:
//!
//! * **Per-node communication floor** ([`node_comm_floor`]): for a proper
//!   contraction, the minimum over every Cannon pattern the optimizer
//!   may enumerate under the given `allow_replication` setting and every
//!   fused-surrounding subset of the node's loop indices of the summed
//!   rotation cost, computed by the very [`crate::rotate`] kernel the DP
//!   prices candidates with (identical `f64` for the realized
//!   combination). Redistribution, element-wise, and reduction costs are
//!   floored at their true minimum of zero, which keeps the bound
//!   admissible under every optimizer configuration.
//! * **Subtree floors** ([`subtree_comm_floors`]): postorder sums of the
//!   per-node floors — a lower bound on the communication cost of *any*
//!   solution the DP can store at that node, used as branch-and-bound
//!   corner floors and as the whole-tree certificate
//!   ([`comm_lower_bound`]).
//! * **Memory floor** ([`mem_floor_words`]): every plan stores, at every
//!   node, at least the smallest distributed block any layout/fusion
//!   combination allows (leaves and the root cannot be fused away); the
//!   per-node minima sum to a footprint every feasible plan must pay.
//!   [`prove_memory_infeasible`] turns this into a pre-search rejection
//!   of impossible `(expression, memory limit)` pairs.
//! * **Memory-dependent bound** ([`comm_lower_bound_with_limit`]):
//!   restricts each node's pattern/surrounding enumeration to
//!   combinations whose own storage, on top of every *other* node's
//!   memory floor, still fits the limit — never below the
//!   memory-independent bound, and `None` when some node has no feasible
//!   combination at all (a stronger infeasibility proof).
//!
//! Admissibility argument: minimizing the exact kernel over a superset of
//! reachable configurations can only under-estimate; floating-point
//! re-association across subtree sums is absorbed by
//! [`crate::bound::certify`]'s relative margin (callers certify before
//! comparing against search results). See DESIGN.md §12.

use std::collections::HashMap;

use tce_dist::{dist_size, enumerate_patterns, Distribution, Operand};
use tce_expr::{ExprTree, IndexId, IndexSet, NodeId, NodeKind, Tensor};

use crate::model::CostModel;
use crate::units::WORD_BYTES;

/// Budget on `patterns × surrounding-subsets` enumerated per node. Nodes
/// whose combination space exceeds it fall back to the (always
/// admissible) floor of zero instead of stalling the pre-pass; realistic
/// contraction nodes are orders of magnitude below this.
const MAX_COMBOS_PER_NODE: usize = 1 << 20;

/// One node's communication floor plus whether it was computed exactly.
///
/// `exact == false` means the enumeration fell back to the degenerate
/// (but still admissible) floor of zero because the node's
/// `patterns × surrounding-subsets` space exceeded
/// [`MAX_COMBOS_PER_NODE`] (or was empty). A gap reported against an
/// inexact floor is still sound — the true floor is only higher — but it
/// is *not* a tight certificate, and callers must surface that.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeFloor {
    /// The admissible floor (model seconds).
    pub floor: f64,
    /// Whether the floor is the exact kernel minimum (no combo-budget
    /// fallback fired at this node).
    pub exact: bool,
}

/// The communication floor of one node: zero except for proper
/// contractions, where it is the minimum summed rotation cost over every
/// Cannon pattern (under the given `allow_replication`) and every fused
/// surrounding
/// `S ⊆ loop_indices` not containing the pattern's rotation index —
/// priced by the same [`crate::rotate::rotate_cost_surrounded`] kernel
/// (and trip-count rule) the DP charges, so the floor never exceeds any
/// candidate's rotation total at this node.
pub fn node_comm_floor(
    tree: &ExprTree,
    cm: &CostModel,
    node: NodeId,
    allow_replication: bool,
) -> f64 {
    node_comm_floor_detailed(tree, cm, node, allow_replication).floor
}

/// [`node_comm_floor`] with the exactness flag: reports whether the
/// returned floor is the true kernel minimum or the combo-budget
/// zero fallback (`lower_bound.rs` previously collapsed both to `0.0`
/// silently, making degenerate certificates look real).
pub fn node_comm_floor_detailed(
    tree: &ExprTree,
    cm: &CostModel,
    node: NodeId,
    allow_replication: bool,
) -> NodeFloor {
    let n = tree.node(node);
    let NodeKind::Contract { left, right, .. } = n.kind else {
        return NodeFloor { floor: 0.0, exact: true };
    };
    let Ok(groups) = tree.contraction_groups(node) else {
        // element-wise multiply: aligned, no rotation
        return NodeFloor { floor: 0.0, exact: true };
    };
    let patterns = enumerate_patterns(&groups, allow_replication);
    let loops: Vec<IndexId> = n.loop_indices().iter().collect();
    if patterns.is_empty()
        || loops.len() >= usize::BITS as usize
        || patterns.len().saturating_mul(1usize << loops.len()) > MAX_COMBOS_PER_NODE
    {
        return NodeFloor { floor: 0.0, exact: false };
    }
    let space = &tree.space;
    let operands: [(&Tensor, Operand); 3] = [
        (&tree.node(left).tensor, Operand::Left),
        (&tree.node(right).tensor, Operand::Right),
        (&n.tensor, Operand::Result),
    ];

    let mut best = f64::INFINITY;
    for pat in &patterns {
        let ldist = pat.operand_dist(Operand::Left);
        let rdist = pat.operand_dist(Operand::Right);
        let odist = pat.operand_dist(Operand::Result);
        let rot_index = pat.rotation_index();
        // Per-processor trip count of a surrounding loop — the DP's rule,
        // verbatim, so per-combination values match it bit for bit.
        let trip = |j: IndexId| -> u64 {
            let dim = odist
                .position_of(j)
                .or_else(|| ldist.position_of(j))
                .or_else(|| rdist.position_of(j));
            match dim {
                Some(d) => tce_dist::block_len(space.extent(j), cm.grid.extent(d)),
                None => space.extent(j),
            }
        };
        // The rotation kernel factors as (Π_{j∈S} trip(j)) × RCost(sliced
        // block): cache the RCost base per (operand, S ∩ dims) so the 2^|S|
        // sweep multiplies cached bases instead of re-interpolating.
        let mut bases: [HashMap<IndexSet, f64>; 3] = Default::default();
        for mask in 0u64..(1u64 << loops.len()) {
            let surround: IndexSet = loops
                .iter()
                .enumerate()
                .filter(|&(b, _)| mask >> b & 1 == 1)
                .map(|(_, &j)| j)
                .collect();
            if let Some(k) = rot_index {
                if surround.contains(k) {
                    continue; // the step loop cannot be fused around it
                }
            }
            let factor: u128 = surround.iter().map(|j| trip(j) as u128).product();
            // Left, right, result — the DP's summation order.
            let mut total = 0.0f64;
            for (slot, &(tensor, op)) in operands.iter().enumerate() {
                let Some(travel) = pat.travel_dim(op) else { continue };
                let dist = match op {
                    Operand::Left => ldist,
                    Operand::Right => rdist,
                    Operand::Result => odist,
                };
                let sliced: IndexSet = surround.intersection(&tensor.dim_set());
                let base = *bases[slot].entry(sliced.clone()).or_insert_with(|| {
                    let words = dist_size(tensor, space, cm.grid, dist, &sliced);
                    cm.chr.rcost(cm.grid.extent(travel), travel, (words * WORD_BYTES) as f64)
                });
                total += factor as f64 * base;
            }
            if total < best {
                best = total;
            }
        }
    }
    if best.is_finite() {
        NodeFloor { floor: best, exact: true }
    } else {
        // Defensive: every pattern's mask-0 combination contributes a
        // finite total when patterns are non-empty, so this is a fallback.
        NodeFloor { floor: 0.0, exact: false }
    }
}

/// The whole tree's postorder floors, with exactness accounting.
#[derive(Clone, Debug)]
pub struct SubtreeFloors {
    /// `floor[v] = node_comm_floor(v) + Σ floor[children]` — a lower
    /// bound (in exact arithmetic; certify before comparing) on the
    /// subtree communication cost of every solution the DP can store at
    /// `v`.
    pub floors: HashMap<NodeId, f64>,
    /// Whether the floor at `v` is exact: the AND of [`NodeFloor::exact`]
    /// over the whole subtree rooted at `v`.
    pub exact: HashMap<NodeId, bool>,
    /// Whether `v`'s *own* per-node floor was computed exactly (no
    /// combo-budget fallback at `v` itself, children not considered).
    pub node_exact: HashMap<NodeId, bool>,
    /// Number of nodes whose *own* floor fell back to the degenerate
    /// zero (the `lb.floor_fallback` counter).
    pub fallback_nodes: u64,
}

impl SubtreeFloors {
    /// Whether the whole-tree certificate (the root floor) is exact.
    pub fn root_exact(&self, tree: &ExprTree) -> bool {
        self.exact.get(&tree.root()).copied().unwrap_or(false)
    }
}

/// Postorder communication floors: `floor[v] = node_comm_floor(v) +
/// Σ floor[children]` — a lower bound (in exact arithmetic; certify
/// before comparing) on the subtree communication cost of every solution
/// the DP can store at `v`.
pub fn subtree_comm_floors(
    tree: &ExprTree,
    cm: &CostModel,
    allow_replication: bool,
) -> HashMap<NodeId, f64> {
    subtree_comm_floors_detailed(tree, cm, allow_replication).floors
}

/// [`subtree_comm_floors`] with per-subtree exactness flags and the count
/// of combo-budget fallbacks, so callers can tell a tight certificate
/// from a degenerate one.
pub fn subtree_comm_floors_detailed(
    tree: &ExprTree,
    cm: &CostModel,
    allow_replication: bool,
) -> SubtreeFloors {
    let mut floors: HashMap<NodeId, f64> = HashMap::new();
    let mut exact: HashMap<NodeId, bool> = HashMap::new();
    let mut node_exact: HashMap<NodeId, bool> = HashMap::new();
    let mut fallback_nodes = 0u64;
    for node in tree.postorder() {
        let children: f64 = tree.children(node).iter().map(|c| floors[c]).sum();
        let children_exact = tree.children(node).iter().all(|c| exact[c]);
        let nf = node_comm_floor_detailed(tree, cm, node, allow_replication);
        if !nf.exact {
            fallback_nodes += 1;
        }
        floors.insert(node, nf.floor + children);
        exact.insert(node, nf.exact && children_exact);
        node_exact.insert(node, nf.exact);
    }
    SubtreeFloors { floors, exact, node_exact, fallback_nodes }
}

/// The memory-independent communication lower bound of the whole tree:
/// the root's subtree floor. Every plan the optimizer can emit (any
/// thread count, any pruning mode, any memory limit) costs at least this
/// many model seconds of communication, up to float re-association
/// (certify with [`crate::bound::certify`] before comparing).
pub fn comm_lower_bound(tree: &ExprTree, cm: &CostModel, allow_replication: bool) -> f64 {
    subtree_comm_floors(tree, cm, allow_replication)[&tree.root()]
}

/// The smallest per-processor storage (words) any reachable
/// layout/fusion combination leaves at `node`: minimized over every
/// distribution (replication included — a superset of both settings) and
/// every fused subset of the array's dimensions up to `prefix_cap`.
/// Leaves and the root cannot be fused away (leaves are stored in full
/// blocks; the root winner must carry an empty fusion), so their minimum
/// is over distributions alone.
pub fn node_mem_floor(tree: &ExprTree, cm: &CostModel, node: NodeId, prefix_cap: usize) -> u128 {
    let n = tree.node(node);
    let tensor = &n.tensor;
    let dims = tensor.dim_set();
    let dim_list: Vec<IndexId> = dims.iter().collect();
    let cap = if n.is_leaf() || node == tree.root() { 0 } else { prefix_cap.min(dim_list.len()) };
    let dists = Distribution::enumerate(&dims, true);
    let mut best = u128::MAX;
    for mask in 0u32..(1u32 << dim_list.len()) {
        if (mask.count_ones() as usize) > cap {
            continue;
        }
        let fused: IndexSet = dim_list
            .iter()
            .enumerate()
            .filter(|&(b, _)| mask >> b & 1 == 1)
            .map(|(_, &j)| j)
            .collect();
        for &d in &dists {
            best = best.min(dist_size(tensor, &tree.space, cm.grid, d, &fused));
        }
    }
    best
}

/// The footprint floor of the whole tree: the sum over every node of its
/// minimal per-processor storage. The DP's memory accounting telescopes a
/// candidate's `mem_words` into exactly this per-node sum (each node
/// contributes one `dist_size` term), so every emitted plan satisfies
/// `plan.mem_words ≥ mem_floor_words`.
pub fn mem_floor_words(tree: &ExprTree, cm: &CostModel, prefix_cap: usize) -> u128 {
    tree.postorder().into_iter().map(|node| node_mem_floor(tree, cm, node, prefix_cap)).sum()
}

/// Why a `(tree, limit)` pair is provably infeasible before any search.
#[derive(Clone, Debug)]
pub struct MemInfeasible {
    /// The proven footprint floor (words per processor).
    pub floor_words: u128,
    /// The limit it exceeds (words per processor).
    pub limit_words: u128,
    /// Name of the largest single contributor (for the diagnostic).
    pub largest_node: String,
    /// That node's own floor contribution (words).
    pub largest_words: u128,
}

/// The memory-feasibility prover: `Some(proof)` when **no** plan can fit
/// `limit_words` (the per-node storage floors already exceed it), `None`
/// when the floor is inconclusive. A `Some` here means the exponential
/// search is pointless — `optimize()` would end in
/// `NoFeasibleSolution` after enumerating everything.
pub fn prove_memory_infeasible(
    tree: &ExprTree,
    cm: &CostModel,
    limit_words: u128,
    prefix_cap: usize,
) -> Option<MemInfeasible> {
    let mut floor = 0u128;
    let mut largest: (u128, String) = (0, String::new());
    for node in tree.postorder() {
        let words = node_mem_floor(tree, cm, node, prefix_cap);
        floor += words;
        if words > largest.0 {
            largest = (words, tree.node(node).tensor.name.clone());
        }
    }
    (floor > limit_words).then_some(MemInfeasible {
        floor_words: floor,
        limit_words,
        largest_node: largest.1,
        largest_words: largest.0,
    })
}

/// The memory-dependent communication lower bound: like
/// [`comm_lower_bound`], but each contraction node's pattern/surrounding
/// minimum is restricted to combinations whose own result storage — on
/// top of every other node's memory floor — still fits `limit_words`
/// (every surviving candidate's footprint dominates that sum, so the
/// restriction is admissible). Returns `None` when some node has no
/// feasible combination at all or the footprint floor alone exceeds the
/// limit: a proof that no plan fits. Always ≥ the memory-independent
/// bound when `Some`.
pub fn comm_lower_bound_with_limit(
    tree: &ExprTree,
    cm: &CostModel,
    limit_words: u128,
    prefix_cap: usize,
    allow_replication: bool,
) -> Option<f64> {
    let mem_floors: HashMap<NodeId, u128> = tree
        .postorder()
        .into_iter()
        .map(|node| (node, node_mem_floor(tree, cm, node, prefix_cap)))
        .collect();
    let total_mem_floor: u128 = mem_floors.values().sum();
    if total_mem_floor > limit_words {
        return None;
    }
    let mut total = 0.0f64;
    for node in tree.postorder() {
        let others = total_mem_floor - mem_floors[&node];
        let budget = limit_words - others; // ≥ mem_floors[&node] ≥ 0
        match node_comm_floor_under(tree, cm, node, budget, allow_replication) {
            Some(floor) => total += floor,
            None => return None,
        }
    }
    Some(total)
}

/// [`node_comm_floor`] restricted to combinations whose minimal result
/// storage fits `budget_words`; `None` when a proper contraction has no
/// feasible combination (the infeasibility case — non-contraction nodes
/// always return `Some(0.0)`).
fn node_comm_floor_under(
    tree: &ExprTree,
    cm: &CostModel,
    node: NodeId,
    budget_words: u128,
    allow_replication: bool,
) -> Option<f64> {
    let n = tree.node(node);
    let NodeKind::Contract { left, right, .. } = n.kind else {
        return Some(0.0);
    };
    let Ok(groups) = tree.contraction_groups(node) else {
        return Some(0.0);
    };
    let patterns = enumerate_patterns(&groups, allow_replication);
    let loops: Vec<IndexId> = n.loop_indices().iter().collect();
    if patterns.is_empty()
        || loops.len() >= usize::BITS as usize
        || patterns.len().saturating_mul(1usize << loops.len()) > MAX_COMBOS_PER_NODE
    {
        return Some(0.0); // floor falls back to zero, never to infeasible
    }
    let space = &tree.space;
    let operands: [(&Tensor, Operand); 3] = [
        (&tree.node(left).tensor, Operand::Left),
        (&tree.node(right).tensor, Operand::Right),
        (&n.tensor, Operand::Result),
    ];
    let mut best: Option<f64> = None;
    for pat in &patterns {
        let ldist = pat.operand_dist(Operand::Left);
        let rdist = pat.operand_dist(Operand::Right);
        let odist = pat.operand_dist(Operand::Result);
        let rot_index = pat.rotation_index();
        let trip = |j: IndexId| -> u64 {
            let dim = odist
                .position_of(j)
                .or_else(|| ldist.position_of(j))
                .or_else(|| rdist.position_of(j));
            match dim {
                Some(d) => tce_dist::block_len(space.extent(j), cm.grid.extent(d)),
                None => space.extent(j),
            }
        };
        let mut bases: [HashMap<IndexSet, f64>; 3] = Default::default();
        for mask in 0u64..(1u64 << loops.len()) {
            let surround: IndexSet = loops
                .iter()
                .enumerate()
                .filter(|&(b, _)| mask >> b & 1 == 1)
                .map(|(_, &j)| j)
                .collect();
            if let Some(k) = rot_index {
                if surround.contains(k) {
                    continue;
                }
            }
            // A candidate built from (pat, S) fuses fu ⊆ S at this node, so
            // its storage is at least dist_size with the whole of S fused.
            if dist_size(&n.tensor, space, cm.grid, odist, &surround) > budget_words {
                continue;
            }
            let factor: u128 = surround.iter().map(|j| trip(j) as u128).product();
            let mut total = 0.0f64;
            for (slot, &(tensor, op)) in operands.iter().enumerate() {
                let Some(travel) = pat.travel_dim(op) else { continue };
                let dist = match op {
                    Operand::Left => ldist,
                    Operand::Right => rdist,
                    Operand::Result => odist,
                };
                let sliced: IndexSet = surround.intersection(&tensor.dim_set());
                let base = *bases[slot].entry(sliced.clone()).or_insert_with(|| {
                    let words = dist_size(tensor, space, cm.grid, dist, &sliced);
                    cm.chr.rcost(cm.grid.extent(travel), travel, (words * WORD_BYTES) as f64)
                });
                total += factor as f64 * base;
            }
            best = Some(match best {
                Some(b) if b <= total => b,
                _ => total,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use tce_expr::parse;

    fn matmul(extent: u64) -> ExprTree {
        let src = format!(
            "range i = {extent}; range j = {extent}; range k = {extent};\n\
             input A[i,k]; input B[k,j];\nC[i,j] = sum[k] A[i,k]*B[k,j];\n"
        );
        parse(&src).unwrap().to_sequence().unwrap().to_tree().unwrap()
    }

    fn cm4() -> CostModel {
        CostModel::for_square(MachineModel::itanium_cluster(), 4).unwrap()
    }

    #[test]
    fn matmul_comm_floor_is_positive_and_finite() {
        let tree = matmul(64);
        let cm = cm4();
        let lb = comm_lower_bound(&tree, &cm, false);
        assert!(lb.is_finite());
        assert!(lb > 0.0, "a contraction must move data: {lb}");
    }

    #[test]
    fn floors_are_monotone_in_the_memory_limit() {
        let tree = matmul(64);
        let cm = cm4();
        let free = comm_lower_bound(&tree, &cm, false);
        let loose = comm_lower_bound_with_limit(&tree, &cm, u128::MAX, 2, false).unwrap();
        assert!((loose - free).abs() <= 1e-12 * free.abs().max(1.0));
        // Tightening the limit can only raise (or keep) the bound.
        let floor = mem_floor_words(&tree, &cm, 2);
        let tight = comm_lower_bound_with_limit(&tree, &cm, floor, 2, false);
        if let Some(t) = tight {
            assert!(t >= loose - 1e-12 * loose.abs().max(1.0), "{t} < {loose}");
        }
    }

    #[test]
    fn mem_floor_never_exceeds_a_real_plan_footprint() {
        // Leaves stored in full minimal blocks + root: for 64×64 arrays on
        // a 2×2 grid the floor is 3 · 64·64/4 = 3072 words.
        let tree = matmul(64);
        let cm = cm4();
        assert_eq!(mem_floor_words(&tree, &cm, 2), 3 * (64 * 64 / 4));
    }

    #[test]
    fn prover_rejects_impossible_limits_and_accepts_loose_ones() {
        let tree = matmul(64);
        let cm = cm4();
        let floor = mem_floor_words(&tree, &cm, 2);
        assert!(prove_memory_infeasible(&tree, &cm, floor, 2).is_none());
        let proof = prove_memory_infeasible(&tree, &cm, floor - 1, 2).expect("must reject");
        assert_eq!(proof.floor_words, floor);
        assert_eq!(proof.limit_words, floor - 1);
        assert!(!proof.largest_node.is_empty());
        assert!(proof.largest_words > 0);
        assert!(comm_lower_bound_with_limit(&tree, &cm, floor - 1, 2, false).is_none());
    }

    #[test]
    fn small_trees_have_exact_floors() {
        let tree = matmul(64);
        let cm = cm4();
        let detail = subtree_comm_floors_detailed(&tree, &cm, false);
        assert_eq!(detail.fallback_nodes, 0);
        assert!(detail.root_exact(&tree));
        assert!(detail.exact.values().all(|&e| e));
        // The detailed floors agree with the legacy API.
        let legacy = subtree_comm_floors(&tree, &cm, false);
        assert_eq!(detail.floors, legacy);
    }

    #[test]
    fn combo_budget_fallback_is_reported_not_silent() {
        // 21 loop indices push patterns × 2^|loops| over the per-node
        // combo budget: the floor degrades to 0 but must say so.
        let mut src = String::new();
        let mut a_dims = Vec::new();
        let mut b_dims = Vec::new();
        for d in 0..10 {
            src.push_str(&format!("range i{d} = 2; range j{d} = 2;\n"));
            a_dims.push(format!("i{d}"));
            b_dims.push(format!("j{d}"));
        }
        src.push_str("range k = 2;\n");
        src.push_str(&format!(
            "input A[{},k]; input B[k,{}];\n",
            a_dims.join(","),
            b_dims.join(",")
        ));
        src.push_str(&format!(
            "C[{},{}] = sum[k] A[{},k]*B[k,{}];\n",
            a_dims.join(","),
            b_dims.join(","),
            a_dims.join(","),
            b_dims.join(",")
        ));
        let tree = parse(&src).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let cm = cm4();
        let nf = node_comm_floor_detailed(&tree, &cm, tree.root(), false);
        assert_eq!(nf.floor, 0.0);
        assert!(!nf.exact, "combo-budget fallback must be flagged");
        let detail = subtree_comm_floors_detailed(&tree, &cm, false);
        assert_eq!(detail.fallback_nodes, 1);
        assert!(!detail.root_exact(&tree));
    }

    #[test]
    fn reductions_and_elementwise_floors_are_zero() {
        let src = "range i = 8; range j = 8;\ninput A[i,j];\nS[j] = sum[i] A[i,j];\n";
        let tree = parse(src).unwrap().to_sequence().unwrap().to_tree().unwrap();
        let cm = cm4();
        assert_eq!(comm_lower_bound(&tree, &cm, false), 0.0);
    }
}
