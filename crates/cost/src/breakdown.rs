//! Per-communication-kind cost attribution.
//!
//! The 7-term kernels of §4 price whole logical moves — "rotate this
//! operand through q grid positions", "redistribute that intermediate" —
//! but the machine executes them as sequences of the simulator's five
//! event kinds (Align, Shift, Home, Redistribute, Reduce). A
//! [`CommBreakdown`] splits one kernel total across those kinds using the
//! same uniform-round decomposition the simulator charges, so `tce
//! explain`/`tce report` can attribute every predicted second to a kind
//! and the per-kind columns sum *exactly* to the kernel totals (each
//! split computes one part as a quotient and the rest by subtraction).

/// A communication cost split by event kind, in model seconds. Fields
/// mirror the simulator's `CommKind` order.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommBreakdown {
    /// Initial skew placing rotating operands (Cannon-style setup).
    pub align: f64,
    /// Steady-state nearest-neighbour rotation steps.
    pub shift: f64,
    /// Final step returning a rotating result to its home placement.
    pub home: f64,
    /// Layout changes between a produced and a required distribution.
    pub redistribute: f64,
    /// Combining partial results over a summed-away grid dimension.
    pub reduce: f64,
}

impl CommBreakdown {
    /// The sum over all kinds. Exact for breakdowns built by the
    /// constructors below: each splits a total into `total/q` and
    /// `total − total/q`.
    pub fn total(&self) -> f64 {
        self.align + self.shift + self.home + self.redistribute + self.reduce
    }

    /// Accumulate `other` into `self`, kind by kind.
    pub fn add(&mut self, other: &CommBreakdown) {
        self.align += other.align;
        self.shift += other.shift;
        self.home += other.home;
        self.redistribute += other.redistribute;
        self.reduce += other.reduce;
    }

    /// The cost of rotating an *input* operand through `rounds` lockstep
    /// rounds: one Align to skew it into place, then `rounds − 1` Shifts.
    /// Rounds are uniform, so Align gets `cost/rounds` and Shift the exact
    /// remainder. With `rounds ≤ 1` there is nothing to shift — the whole
    /// cost is the alignment.
    pub fn rotating_input(cost: f64, rounds: u64) -> CommBreakdown {
        if rounds <= 1 {
            return CommBreakdown { align: cost, ..CommBreakdown::default() };
        }
        let align = cost / rounds as f64;
        CommBreakdown { align, shift: cost - align, ..CommBreakdown::default() }
    }

    /// The cost of rotating the *result* through `rounds` rounds:
    /// `rounds − 1` Shifts, then one Home step returning it to its final
    /// placement (`cost/rounds`, remainder to Shift).
    pub fn rotating_result(cost: f64, rounds: u64) -> CommBreakdown {
        if rounds <= 1 {
            return CommBreakdown { home: cost, ..CommBreakdown::default() };
        }
        let home = cost / rounds as f64;
        CommBreakdown { home, shift: cost - home, ..CommBreakdown::default() }
    }

    /// A pure reduction cost (patternless distributed sum).
    pub fn reduction(cost: f64) -> CommBreakdown {
        CommBreakdown { reduce: cost, ..CommBreakdown::default() }
    }

    /// A pure redistribution cost.
    pub fn redistribution(cost: f64) -> CommBreakdown {
        CommBreakdown { redistribute: cost, ..CommBreakdown::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_sum_exactly_to_their_totals() {
        for cost in [0.0, 1.0, 0.3, 1e9 + 0.7, 5.5e-7] {
            for rounds in [1u64, 2, 3, 4, 7, 16] {
                let a = CommBreakdown::rotating_input(cost, rounds);
                assert_eq!(a.total(), cost, "input split {cost} @{rounds} rounds");
                let b = CommBreakdown::rotating_result(cost, rounds);
                assert_eq!(b.total(), cost, "result split {cost} @{rounds} rounds");
            }
        }
    }

    #[test]
    fn single_round_degenerates_to_align_or_home() {
        let a = CommBreakdown::rotating_input(3.5, 1);
        assert_eq!((a.align, a.shift), (3.5, 0.0));
        let b = CommBreakdown::rotating_result(3.5, 1);
        assert_eq!((b.home, b.shift), (3.5, 0.0));
    }

    #[test]
    fn accumulation_is_per_kind() {
        let mut acc = CommBreakdown::rotating_input(4.0, 4);
        acc.add(&CommBreakdown::rotating_result(2.0, 2));
        acc.add(&CommBreakdown::reduction(0.5));
        acc.add(&CommBreakdown::redistribution(0.25));
        assert_eq!(acc.align, 1.0);
        assert_eq!(acc.shift, 3.0 + 1.0);
        assert_eq!(acc.home, 1.0);
        assert_eq!(acc.reduce, 0.5);
        assert_eq!(acc.redistribute, 0.25);
        assert_eq!(acc.total(), 4.0 + 2.0 + 0.5 + 0.25);
    }
}
