//! # tce-cost — machine models and communication cost models
//!
//! The cost side of the IPPS 2003 reproduction:
//!
//! * [`MachineModel`] — latency / saturating-bandwidth / flop-rate model of
//!   the target cluster, **calibrated against the paper's Tables 1–2** so
//!   the stand-in reproduces the Itanium cluster's published behaviour;
//! * [`rcost`] — the empirical `RCost` characterization
//!   mechanism of §3.3 (measure once → serialize → interpolate);
//! * [`rotate`] — `LoopRange`, `MsgFactor`, `RotateCost`,
//!   and the surrounding-loop generalization;
//! * [`redist`] — redistribution cost between Cannon steps;
//! * [`compute`] — flop-time model for headline totals;
//! * [`units`] — the paper's quirky MB/GB conventions, so
//!   regenerated tables match digit for digit;
//! * [`CostModel`] — the bundle handed to the optimizer;
//! * [`CostMemo`] — a per-run, thread-shared memo table in front of the
//!   redistribution and rotation kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::panic))]

pub mod bound;
mod breakdown;
pub mod compute;
pub mod kernel;
pub mod lower_bound;
mod machine;
mod memo;
mod model;
pub mod rcost;
pub mod redist;
pub mod rotate;
pub mod units;

pub use breakdown::CommBreakdown;
pub use machine::MachineModel;
pub use memo::CostMemo;
pub use model::CostModel;
pub use rcost::{
    characterize, rcost_fallback_count, Characterization, CostError, GridTable, RCostPoint,
};
