//! Admissible lower bounds for branch-and-bound candidate skipping.
//!
//! The optimizer's combine loops enumerate `(left-option, right-option)`
//! products whose cost is a sum of non-negative child costs plus
//! node-local rotation/redistribution terms. To skip a tail of that
//! product soundly, it needs a *floor*: a value provably ≤ the true cost
//! of every skipped candidate. Two ingredients live here:
//!
//! * [`suffix_floors`] — per-suffix minima over a child-option list in its
//!   **original enumeration order** (the order must not be disturbed:
//!   storage order is part of the optimizer's bit-identity contract), so
//!   `floors[i]` bounds every option at index ≥ i;
//! * [`certify`] — shrinks a bound computed with a *different association
//!   order* than the candidate's actual cost expression by [`LB_MARGIN`],
//!   absorbing floating-point re-association error. The combine loops sum
//!   at most 7 non-negative f64 terms; re-association of an n-term
//!   non-negative sum perturbs the result by < n·ε relative (ε = 2⁻⁵²
//!   ≈ 2.2e-16), so a relative margin of 1e-12 (> 7·ε by a factor of
//!   ~6e2) guarantees `certify(lb) ≤ cost` for every candidate the bound
//!   covers. Skips are therefore conservative: a candidate is only
//!   skipped when even its *certified under-estimate* is dominated.

/// Relative slack applied to cross-association lower bounds; see the
/// module docs for why `1e-12` safely covers ≤7-term f64 sums.
pub const LB_MARGIN: f64 = 1e-12;

/// Certify a lower bound computed with a different floating-point
/// association order than the candidate costs it must under-estimate.
///
/// Costs are non-negative, so shrinking by a relative margin only ever
/// loosens the bound (keeps it admissible).
#[inline]
pub fn certify(lb: f64) -> f64 {
    lb * (1.0 - LB_MARGIN)
}

/// Per-suffix floors over `(cost, mem_words, max_msg_words)` triples in
/// their original order: `floors[i] = (min cost, min mem, min msg)` over
/// items `i..`. Returns one entry per item (empty input → empty vec).
///
/// Each component is floored independently, so the triple is a *corner*
/// no real suffix item need attain — that is exactly what makes it a
/// sound bound for dominance queries: if the corner is dominated, every
/// real item in the suffix is too.
pub fn suffix_floors(items: impl Iterator<Item = (f64, u128, u128)>) -> Vec<(f64, u128, u128)> {
    let collected: Vec<(f64, u128, u128)> = items.collect();
    let mut floors = vec![(0.0_f64, 0_u128, 0_u128); collected.len()];
    let mut cost = f64::INFINITY;
    let mut mem = u128::MAX;
    let mut msg = u128::MAX;
    for i in (0..collected.len()).rev() {
        let (c, m, g) = collected[i];
        cost = cost.min(c);
        mem = mem.min(m);
        msg = msg.min(g);
        floors[i] = (cost, mem, msg);
    }
    floors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_floors_are_componentwise_minima() {
        let items = [(5.0, 10, 3), (2.0, 20, 9), (4.0, 5, 1)];
        let floors = suffix_floors(items.iter().copied());
        assert_eq!(floors, vec![(2.0, 5, 1), (2.0, 5, 1), (4.0, 5, 1)]);
        for (i, &(fc, fm, fg)) in floors.iter().enumerate() {
            for &(c, m, g) in &items[i..] {
                assert!(fc <= c && fm <= m && fg <= g);
            }
        }
    }

    #[test]
    fn suffix_floors_empty() {
        assert!(suffix_floors(std::iter::empty()).is_empty());
    }

    #[test]
    fn certify_under_estimates_reassociated_sums() {
        // Worst-case style check: sum 7 terms in two association orders;
        // the certified bound of either order is ≤ the other's exact sum.
        let terms = [1.0e9, 3.7, 2.2e-8, 5.0e4, 9.99e12, 0.125, 6.6e3];
        let fwd: f64 = terms.iter().sum();
        let bwd: f64 = terms.iter().rev().sum();
        assert!(certify(fwd) <= bwd);
        assert!(certify(bwd) <= fwd);
        assert!(certify(0.0) == 0.0);
    }
}
