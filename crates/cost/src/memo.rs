//! Per-run memoization of the search's hot cost kernels.
//!
//! The §3.3 dynamic program re-prices the same redistribution and rotation
//! over and over: every `(pattern, fusion-triple)` combination at a node
//! asks for the same `(tensor, from, to)` redistributions and the same
//! `(tensor, α, travel)` rotation bases thousands of times. A [`CostMemo`]
//! sits in front of [`CostModel::redistribution_cost`] and
//! [`CostModel::rotate_cost_surrounded`] and caches the answers for the
//! lifetime of one optimizer run.
//!
//! The table is sharded behind small mutexes so parallel search workers
//! share it without serializing on one lock; hit/miss totals are kept in a
//! lock-free [`tce_obs::AtomicCounters`] bag and surface as the
//! `dp.memo_hit` / `dp.memo_miss` counters of the run.
//!
//! Memoized values are computed by exactly the formulas the un-memoized
//! entry points use, so a memoized search returns bit-identical costs.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use tce_dist::{dist_size, Distribution, GridDim};
use tce_expr::{IndexId, IndexSet, IndexSpace, Tensor};
use tce_obs::AtomicCounters;

use crate::model::CostModel;
use crate::units::WORD_BYTES;

/// One priced kernel invocation. `tensor` is a caller-chosen stable id of
/// the array (the optimizer uses the expression-tree node id), which is
/// cheaper and collision-free compared to hashing the dimension list; the
/// grid and machine are fixed for the memo's lifetime and need no key part.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    /// `redistribution_cost(tensor, from, to, fused)`.
    Redist { tensor: u32, from: Distribution, to: Distribution, fused: IndexSet },
    /// The factor-independent base of `rotate_cost_surrounded`:
    /// `RCost(DistSize(tensor, alpha, sliced), travel)`. The surrounding
    /// trip-count product varies per pattern and multiplies the cached base
    /// at lookup time.
    Rotate { tensor: u32, alpha: Distribution, travel: GridDim, sliced: IndexSet },
}

fn shard_of(key: &Key, shards: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % shards
}

/// Sharded `(kernel arguments) → cost` table for one optimizer run.
pub struct CostMemo {
    shards: Vec<Mutex<HashMap<Key, f64>>>,
    counters: AtomicCounters,
}

impl Default for CostMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl CostMemo {
    /// A memo with the default shard count (plenty for the worker counts
    /// the search uses).
    pub fn new() -> Self {
        Self::with_shards(16)
    }

    /// A memo with `shards` independently locked partitions.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            counters: AtomicCounters::new(&[tce_obs::names::MEMO_HIT, tce_obs::names::MEMO_MISS]),
        }
    }

    fn lookup_or(&self, key: Key, compute: impl FnOnce() -> f64) -> f64 {
        let shard = &self.shards[shard_of(&key, self.shards.len())];
        if let Some(&v) = shard.lock().expect("memo shard poisoned").get(&key) {
            self.counters.add(tce_obs::names::MEMO_HIT, 1);
            return v;
        }
        // Compute outside the lock: kernels are pure, so two workers racing
        // on the same key store the same value (one insert wins, both are
        // misses — which is why memo counters are interleaving-dependent).
        self.counters.add(tce_obs::names::MEMO_MISS, 1);
        let v = compute();
        self.shards[shard_of(&key, self.shards.len())]
            .lock()
            .expect("memo shard poisoned")
            .insert(key, v);
        v
    }

    /// Memoized [`CostModel::redistribution_cost`].
    #[allow(clippy::too_many_arguments)]
    pub fn redistribution_cost(
        &self,
        cm: &CostModel,
        tensor_id: u32,
        tensor: &Tensor,
        space: &IndexSpace,
        from: Distribution,
        to: Distribution,
        fused: &IndexSet,
    ) -> f64 {
        if from == to {
            return 0.0; // the kernel's own fast path — not worth a table hit
        }
        let key = Key::Redist { tensor: tensor_id, from, to, fused: fused.clone() };
        self.lookup_or(key, || cm.redistribution_cost(tensor, space, from, to, fused))
    }

    /// Memoized [`CostModel::rotate_cost_surrounded`]: the distribution- and
    /// travel-dependent base is cached; the per-pattern trip-count factor is
    /// recomputed (it is a handful of multiplies) and applied per call.
    #[allow(clippy::too_many_arguments)]
    pub fn rotate_cost_surrounded(
        &self,
        cm: &CostModel,
        tensor_id: u32,
        tensor: &Tensor,
        space: &IndexSpace,
        alpha: Distribution,
        travel: GridDim,
        surrounding: &IndexSet,
        trip: impl Fn(IndexId) -> u64,
    ) -> f64 {
        let sliced: IndexSet = surrounding.intersection(&tensor.dim_set());
        let key = Key::Rotate { tensor: tensor_id, alpha, travel, sliced: sliced.clone() };
        let base = self.lookup_or(key, || {
            let words = dist_size(tensor, space, cm.grid, alpha, &sliced);
            cm.chr.rcost(cm.grid.extent(travel), travel, (words * WORD_BYTES) as f64)
        });
        let factor: u128 = surrounding.iter().map(|j| trip(j) as u128).product();
        factor as f64 * base
    }

    /// Kernel calls answered from the table.
    pub fn hits(&self) -> u64 {
        self.counters.get(tce_obs::names::MEMO_HIT)
    }

    /// Kernel calls computed and stored.
    pub fn misses(&self) -> u64 {
        self.counters.get(tce_obs::names::MEMO_MISS)
    }

    /// The hit/miss totals as an owned counter bag (for merging into a
    /// run's [`tce_obs::Counters`]).
    pub fn counters(&self) -> tce_obs::Counters {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;

    fn setup() -> (CostModel, IndexSpace, Tensor) {
        let mut sp = IndexSpace::new();
        let b = sp.declare("b", 480);
        let e = sp.declare("e", 64);
        let f = sp.declare("f", 64);
        let l = sp.declare("l", 32);
        let t = Tensor::new("B", vec![b, e, f, l]);
        (CostModel::for_square(MachineModel::itanium_cluster(), 16).unwrap(), sp, t)
    }

    #[test]
    fn redistribution_matches_unmemoized_and_counts() {
        let (cm, sp, t) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let memo = CostMemo::new();
        let from = Distribution::pair(ix("b"), ix("f"));
        let to = Distribution::pair(ix("b"), ix("e"));
        let none = IndexSet::new();
        let direct = cm.redistribution_cost(&t, &sp, from, to, &none);
        let first = memo.redistribution_cost(&cm, 7, &t, &sp, from, to, &none);
        let second = memo.redistribution_cost(&cm, 7, &t, &sp, from, to, &none);
        assert_eq!(direct.to_bits(), first.to_bits());
        assert_eq!(first.to_bits(), second.to_bits());
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        // Identity layouts bypass the table entirely.
        assert_eq!(memo.redistribution_cost(&cm, 7, &t, &sp, from, from, &none), 0.0);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        // A different tensor id is a different entry even with equal dists.
        memo.redistribution_cost(&cm, 8, &t, &sp, from, to, &none);
        assert_eq!((memo.hits(), memo.misses()), (1, 2));
        assert_eq!(memo.counters().get(tce_obs::names::MEMO_MISS), 2);
    }

    #[test]
    fn rotate_matches_unmemoized_across_factors() {
        let (cm, sp, t) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let memo = CostMemo::new();
        let alpha = Distribution::pair(ix("b"), ix("e"));
        let surrounding = IndexSet::from_iter([ix("f")]);
        let direct = cm.rotate_cost_surrounded(&t, &sp, alpha, GridDim::Dim1, &surrounding, |_| 64);
        let memoized = memo.rotate_cost_surrounded(
            &cm,
            3,
            &t,
            &sp,
            alpha,
            GridDim::Dim1,
            &surrounding,
            |_| 64,
        );
        assert_eq!(direct.to_bits(), memoized.to_bits());
        // Same base, different trip counts: the cached base is reused and
        // the factor applied fresh — still bit-identical to the kernel.
        let direct2 =
            cm.rotate_cost_surrounded(&t, &sp, alpha, GridDim::Dim1, &surrounding, |_| 16);
        let memoized2 = memo.rotate_cost_surrounded(
            &cm,
            3,
            &t,
            &sp,
            alpha,
            GridDim::Dim1,
            &surrounding,
            |_| 16,
        );
        assert_eq!(direct2.to_bits(), memoized2.to_bits());
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
    }

    #[test]
    fn concurrent_workers_agree() {
        let (cm, sp, t) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let memo = CostMemo::with_shards(4);
        let from = Distribution::pair(ix("b"), ix("f"));
        let dests: Vec<Distribution> = Distribution::enumerate(&t.dim_set(), true);
        let none = IndexSet::new();
        let compute = || -> Vec<u64> {
            dests
                .iter()
                .map(|&to| memo.redistribution_cost(&cm, 1, &t, &sp, from, to, &none).to_bits())
                .collect()
        };
        let mut results: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(compute)).collect();
            results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(memo.hits() + memo.misses(), (4 * dests.len() - 4) as u64);
    }
}
