//! Empirical `RCost` characterization (§3.3).
//!
//! > "We empirically measure RCost for each distribution α and each
//! > position of the index i, and for several different localsizes on the
//! > target parallel computer. … once a characterization file is completed,
//! > it can be used to predict, by interpolation or extrapolation, the
//! > communication times for arbitrary array distributions and sizes."
//!
//! We implement the same mechanism: [`characterize`] "measures" full
//! rotations at a ladder of block sizes against the machine model standing
//! in for the real cluster (`tce-sim` charges time from the raw model, so
//! any interpolation error in the optimizer's view is real and
//! observable), the table serializes to JSON, and [`Characterization::rcost`]
//! answers arbitrary sizes by piecewise-linear interpolation with linear
//! extrapolation beyond the last point.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use tce_dist::GridDim;

use crate::machine::MachineModel;

/// Process-wide count of nearest-grid scaled fallbacks served by
/// [`Characterization::rcost`] (the `cost.rcost_fallback` counter —
/// interleaving-dependent because rcost memoization upstream makes query
/// counts depend on thread scheduling; see `NONDETERMINISTIC_COUNTERS`).
static RCOST_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Grid step counts already warned about on stderr (once per grid per
/// process, so optimize/simulate runs over extrapolated tables are loud
/// exactly once instead of silent or spamming).
static WARNED_GRIDS: Mutex<Vec<u32>> = Mutex::new(Vec::new());

/// Total nearest-grid scaled fallbacks served so far by this process.
/// Callers snapshot before/after a run to attribute a delta.
pub fn rcost_fallback_count() -> u64 {
    RCOST_FALLBACKS.load(Ordering::Relaxed)
}

fn note_fallback(steps: u32, nearest: u32) {
    RCOST_FALLBACKS.fetch_add(1, Ordering::Relaxed);
    let mut warned = WARNED_GRIDS.lock().unwrap_or_else(|e| e.into_inner());
    if !warned.contains(&steps) {
        warned.push(steps);
        eprintln!(
            "tce-cost: warning: grid with {steps} rotation steps was never characterized; \
             scaling the nearest table ({nearest} steps) — costs for this grid are \
             extrapolated, not measured"
        );
    }
}

/// One measured point: a full rotation (all steps) of a local block.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RCostPoint {
    /// Local block size in bytes.
    pub bytes: f64,
    /// Measured seconds for the complete rotation.
    pub seconds: f64,
}

/// Measurements for one grid size, per rotation dimension. The paper keys
/// the table by distribution and rotation-index position; on a symmetric
/// torus the two dimensions coincide, but the file format keeps both so an
/// asymmetric machine (e.g. faster intra-node links along one dimension)
/// characterizes without format changes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridTable {
    /// Rotation steps (`√P`, the grid extent along the travel dimension).
    pub steps: u32,
    /// Points for travel along grid dimension 1, ascending in size.
    pub dim1: Vec<RCostPoint>,
    /// Points for travel along grid dimension 2, ascending in size.
    pub dim2: Vec<RCostPoint>,
}

/// A characterization file: the machine it was measured on plus one table
/// per grid size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Name of the characterized machine.
    pub machine: String,
    /// Tables, one per measured grid size.
    pub grids: Vec<GridTable>,
}

impl Characterization {
    /// Stable 128-bit content digest of the characterization: machine name
    /// plus every measured point, bit-exact (`f64::to_bits`). Two cost
    /// models predicting even slightly different rotation times digest
    /// differently, which is what lets the on-disk plan cache key entries
    /// per machine profile — the same expression legitimately has
    /// different optimal plans on different machines.
    pub fn digest(&self) -> u128 {
        let mut h = tce_expr::Fnv128::new();
        h.write_str(&self.machine);
        h.write_u64(self.grids.len() as u64);
        for g in &self.grids {
            h.write_u32(g.steps);
            for points in [&g.dim1, &g.dim2] {
                h.write_u64(points.len() as u64);
                for p in points {
                    h.write_u64(p.bytes.to_bits());
                    h.write_u64(p.seconds.to_bits());
                }
            }
        }
        h.finish()
    }
}

/// The ladder of block sizes measured per grid: 1 kB … 4 GB, ~4 points per
/// decade. Dense enough that piecewise-linear interpolation of the
/// (convex, nearly affine) rotation time is accurate to well under 1 %.
fn size_ladder() -> Vec<f64> {
    let mut sizes = Vec::new();
    let mut s = 1024.0;
    while s <= 4.0 * 1024.0 * 1024.0 * 1024.0 {
        sizes.push(s);
        s *= 1.7782794; // 10^(1/4)
    }
    sizes
}

/// "Measure" full-rotation times on `machine` for the given grid step
/// counts (one table per entry). In the paper this is an MPI
/// micro-benchmark run once per target cluster.
pub fn characterize(machine: &MachineModel, step_counts: &[u32]) -> Characterization {
    let grids = step_counts
        .iter()
        .map(|&q| {
            let measure = |dim: GridDim| {
                size_ladder()
                    .into_iter()
                    .map(|bytes| RCostPoint {
                        bytes,
                        seconds: q as f64
                            * match dim {
                                GridDim::Dim1 => machine.msg_time(bytes),
                                GridDim::Dim2 => machine.msg_time_dim2(bytes),
                            },
                    })
                    .collect::<Vec<_>>()
            };
            GridTable { steps: q, dim1: measure(GridDim::Dim1), dim2: measure(GridDim::Dim2) }
        })
        .collect();
    Characterization { machine: machine.name.clone(), grids }
}

fn interpolate(points: &[RCostPoint], bytes: f64) -> f64 {
    if points.is_empty() {
        // Degenerate table: no information. Callers that must distinguish
        // this from a genuinely free rotation use `try_rcost`.
        return 0.0;
    }
    if bytes <= 0.0 {
        return 0.0;
    }
    if points.len() == 1 {
        // Degenerate table: scale proportionally.
        if points[0].bytes <= 0.0 {
            return points[0].seconds.max(0.0);
        }
        return points[0].seconds * bytes / points[0].bytes;
    }
    // Find the surrounding segment; clamp to the outermost segments for
    // extrapolation.
    let seg = match points.iter().position(|p| p.bytes >= bytes) {
        Some(0) | None if bytes < points[0].bytes => 0,
        Some(0) => 0,
        Some(i) => i - 1,
        None => points.len() - 2,
    };
    let (a, b) = (points[seg], points[seg + 1]);
    if b.bytes - a.bytes <= 0.0 {
        // Duplicate (or descending) byte sizes in a user-supplied table:
        // a zero-width segment has no slope, so answer with the segment's
        // larger measurement instead of dividing by zero (NaN).
        return a.seconds.max(b.seconds).max(0.0);
    }
    let t = (bytes - a.bytes) / (b.bytes - a.bytes);
    (a.seconds + t * (b.seconds - a.seconds)).max(0.0)
}

/// Why a characterization could not answer a cost query exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CostError {
    /// No table was measured for the requested grid size.
    UncharacterizedGrid {
        /// The requested rotation step count (grid extent).
        steps: u32,
    },
    /// A table exists for the grid but holds no measured points for the
    /// requested travel dimension.
    EmptyTable {
        /// The requested rotation step count (grid extent).
        steps: u32,
        /// The travel dimension whose point list is empty.
        travel: GridDim,
    },
}

impl std::fmt::Display for CostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostError::UncharacterizedGrid { steps } => {
                write!(f, "grid with {steps} steps was not characterized")
            }
            CostError::EmptyTable { steps, travel } => {
                write!(f, "characterization table for {steps} steps has no points along {travel:?}")
            }
        }
    }
}

impl std::error::Error for CostError {}

impl Characterization {
    /// Predicted seconds to fully rotate a local block of `bytes` along
    /// `travel` on a grid with `steps` processors in that dimension,
    /// failing with a structured [`CostError`] when the characterization
    /// cannot answer exactly (uncharacterized grid size or an empty point
    /// table — e.g. a hand-edited characterization file).
    pub fn try_rcost(&self, steps: u32, travel: GridDim, bytes: f64) -> Result<f64, CostError> {
        let table = self
            .grids
            .iter()
            .find(|g| g.steps == steps)
            .ok_or(CostError::UncharacterizedGrid { steps })?;
        let points = match travel {
            GridDim::Dim1 => &table.dim1,
            GridDim::Dim2 => &table.dim2,
        };
        if points.is_empty() {
            return Err(CostError::EmptyTable { steps, travel });
        }
        Ok(interpolate(points, bytes))
    }

    /// Predicted seconds to fully rotate a local block of `bytes` along
    /// `travel` on a grid with `steps` processors in that dimension.
    ///
    /// Total: when `steps` was not characterized, the answer is a
    /// documented clamped extrapolation — the nearest characterized grid's
    /// table scaled by the step-count ratio (rotation time is linear in
    /// the number of lockstep rounds for a fixed block size). An entirely
    /// empty characterization (or an empty point table) predicts 0.0; use
    /// [`Characterization::try_rcost`] to detect those cases explicitly.
    pub fn rcost(&self, steps: u32, travel: GridDim, bytes: f64) -> f64 {
        match self.try_rcost(steps, travel, bytes) {
            Ok(t) => t,
            Err(CostError::EmptyTable { .. }) => 0.0,
            Err(CostError::UncharacterizedGrid { .. }) => {
                // Nearest characterized grid (ties broken toward fewer
                // steps), scaled by the ratio of step counts.
                let Some(nearest) = self
                    .grids
                    .iter()
                    .min_by_key(|g| (u64::from(g.steps.abs_diff(steps)), u64::from(g.steps)))
                else {
                    return 0.0;
                };
                let points = match travel {
                    GridDim::Dim1 => &nearest.dim1,
                    GridDim::Dim2 => &nearest.dim2,
                };
                note_fallback(steps, nearest.steps);
                let base = interpolate(points, bytes);
                if nearest.steps == 0 {
                    return base;
                }
                base * f64::from(steps) / f64::from(nearest.steps)
            }
        }
    }

    /// Serialize to the JSON characterization-file format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("characterization serializes")
    }

    /// Load from the JSON characterization-file format.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chr() -> (MachineModel, Characterization) {
        let m = MachineModel::itanium_cluster();
        let c = characterize(&m, &[4, 8]);
        (m, c)
    }

    #[test]
    fn interpolation_matches_model_closely() {
        let (m, c) = chr();
        // Sizes off the ladder: interpolation error must stay tiny.
        for bytes in [1500.0, 3.3e5, 7.7e6, 5.9e7, 4.7e8] {
            for q in [4u32, 8] {
                let exact = q as f64 * m.msg_time(bytes);
                let est = c.rcost(q, GridDim::Dim1, bytes);
                assert!(
                    (est - exact).abs() / exact < 0.01,
                    "q={q} bytes={bytes}: est {est} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn extrapolation_is_sane() {
        let (m, c) = chr();
        // Above the ladder: linear extension of the last segment.
        let bytes = 16.0e9;
        let exact = 8.0 * m.msg_time(bytes);
        let est = c.rcost(8, GridDim::Dim2, bytes);
        assert!((est - exact).abs() / exact < 0.02);
        // Below the ladder.
        let small = c.rcost(8, GridDim::Dim1, 100.0);
        assert!(small > 0.0 && small < c.rcost(8, GridDim::Dim1, 2048.0));
        // Zero size costs nothing.
        assert_eq!(c.rcost(8, GridDim::Dim1, 0.0), 0.0);
    }

    #[test]
    fn monotone_in_size() {
        let (_, c) = chr();
        let mut prev = 0.0;
        let mut bytes = 512.0;
        while bytes < 1e10 {
            let t = c.rcost(4, GridDim::Dim1, bytes);
            assert!(t >= prev);
            prev = t;
            bytes *= 1.37;
        }
    }

    #[test]
    fn json_round_trip() {
        let (_, c) = chr();
        let json = c.to_json();
        let back = Characterization::from_json(&json).unwrap();
        assert_eq!(c.machine, back.machine);
        assert_eq!(c.grids.len(), back.grids.len());
        for (a, b) in c.grids.iter().zip(&back.grids) {
            assert_eq!(a.steps, b.steps);
            for (pa, pb) in a.dim1.iter().zip(&b.dim1).chain(a.dim2.iter().zip(&b.dim2)) {
                // JSON text round-trips floats to within an ULP.
                assert!((pa.bytes - pb.bytes).abs() <= pa.bytes * 1e-12);
                assert!((pa.seconds - pb.seconds).abs() <= pa.seconds * 1e-12);
            }
        }
        assert!(json.contains("itanium"));
    }

    #[test]
    fn uncharacterized_grid_errors_and_extrapolates() {
        let (_, c) = chr();
        // `try_rcost` reports the gap…
        assert_eq!(
            c.try_rcost(16, GridDim::Dim1, 1e6),
            Err(CostError::UncharacterizedGrid { steps: 16 })
        );
        // …while `rcost` answers by scaling the nearest table (8 steps):
        // twice the rounds, twice the time.
        let scaled = c.rcost(16, GridDim::Dim1, 1e6);
        let base = c.rcost(8, GridDim::Dim1, 1e6);
        assert!(scaled.is_finite() && scaled > 0.0);
        assert!((scaled - 2.0 * base).abs() / scaled < 1e-12, "{scaled} vs 2×{base}");
        // Below the smallest characterized grid, scale down.
        let down = c.rcost(2, GridDim::Dim1, 1e6);
        assert!((down - 0.5 * c.rcost(4, GridDim::Dim1, 1e6)).abs() / down < 1e-12);
    }

    #[test]
    fn degenerate_tables_never_produce_nan() {
        // Duplicate byte sizes: the zero-width segment answers with its
        // larger measurement instead of dividing by zero.
        let dup = vec![
            RCostPoint { bytes: 1024.0, seconds: 1.0 },
            RCostPoint { bytes: 1024.0, seconds: 2.0 },
            RCostPoint { bytes: 4096.0, seconds: 8.0 },
        ];
        let c = Characterization {
            machine: "test".into(),
            grids: vec![GridTable { steps: 4, dim1: dup, dim2: Vec::new() }],
        };
        for bytes in [0.0, 512.0, 1024.0, 2048.0, 4096.0, 1e7] {
            let t = c.rcost(4, GridDim::Dim1, bytes);
            assert!(t.is_finite() && !t.is_nan(), "bytes={bytes}: {t}");
            assert!(t >= 0.0);
        }
        // Exactly on the duplicated size: the larger measurement wins.
        assert_eq!(c.rcost(4, GridDim::Dim1, 1024.0), 2.0);
        // An empty point table is an error through `try_rcost`…
        assert_eq!(
            c.try_rcost(4, GridDim::Dim2, 1e6),
            Err(CostError::EmptyTable { steps: 4, travel: GridDim::Dim2 })
        );
        // …and a documented 0.0 through the total `rcost`.
        assert_eq!(c.rcost(4, GridDim::Dim2, 1e6), 0.0);
        // A wholly empty characterization predicts 0.0 everywhere.
        let empty = Characterization { machine: "test".into(), grids: Vec::new() };
        assert_eq!(empty.rcost(4, GridDim::Dim1, 1e6), 0.0);
        assert_eq!(
            empty.try_rcost(4, GridDim::Dim1, 1e6),
            Err(CostError::UncharacterizedGrid { steps: 4 })
        );
    }

    #[test]
    fn nearest_grid_fallback_counts_and_zero_step_table_does_not_scale() {
        let c = Characterization {
            machine: "test".into(),
            grids: vec![GridTable {
                steps: 0,
                dim1: vec![RCostPoint { bytes: 1000.0, seconds: 3.0 }],
                dim2: Vec::new(),
            }],
        };
        let before = rcost_fallback_count();
        // Only a 0-step table exists: the nearest-grid fallback must not
        // divide by zero — it answers with the unscaled base.
        let t = c.rcost(4, GridDim::Dim1, 2000.0);
        assert!(t.is_finite() && t == 6.0, "unscaled base expected, got {t}");
        // The fallback is surfaced, not silent.
        assert!(rcost_fallback_count() > before);
    }

    #[test]
    fn characterized_queries_never_bump_the_fallback_counter() {
        let (_, c) = chr();
        let before = rcost_fallback_count();
        let _ = c.rcost(4, GridDim::Dim1, 1e6);
        let _ = c.rcost(8, GridDim::Dim2, 1e6);
        // Other tests run concurrently and may themselves fall back, so
        // only assert through a private, freshly counted path: a second
        // uncharacterized query strictly increases the count.
        let mid = rcost_fallback_count();
        assert!(mid >= before);
        let _ = c.rcost(16, GridDim::Dim1, 1e6);
        assert!(rcost_fallback_count() > mid);
    }

    #[test]
    fn single_point_table_scales_proportionally() {
        let c = Characterization {
            machine: "test".into(),
            grids: vec![GridTable {
                steps: 2,
                dim1: vec![RCostPoint { bytes: 1000.0, seconds: 3.0 }],
                dim2: vec![RCostPoint { bytes: 0.0, seconds: 5.0 }],
            }],
        };
        assert_eq!(c.rcost(2, GridDim::Dim1, 2000.0), 6.0);
        // Zero-byte single point cannot scale; clamp to the measurement.
        let t = c.rcost(2, GridDim::Dim2, 2000.0);
        assert!(t.is_finite() && t == 5.0);
    }

    #[test]
    fn table1_d_rotation_via_characterization() {
        // D's Table-1 rotation (58.98 MB block, 8 steps) through the
        // characterization must land near the paper's 35.7 s.
        let (_, c) = chr();
        let t = c.rcost(8, GridDim::Dim2, 7_372_800.0 * 8.0);
        assert!((t - 35.7).abs() / 35.7 < 0.15, "got {t:.1}s");
    }
}
