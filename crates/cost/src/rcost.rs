//! Empirical `RCost` characterization (§3.3).
//!
//! > "We empirically measure RCost for each distribution α and each
//! > position of the index i, and for several different localsizes on the
//! > target parallel computer. … once a characterization file is completed,
//! > it can be used to predict, by interpolation or extrapolation, the
//! > communication times for arbitrary array distributions and sizes."
//!
//! We implement the same mechanism: [`characterize`] "measures" full
//! rotations at a ladder of block sizes against the machine model standing
//! in for the real cluster (`tce-sim` charges time from the raw model, so
//! any interpolation error in the optimizer's view is real and
//! observable), the table serializes to JSON, and [`Characterization::rcost`]
//! answers arbitrary sizes by piecewise-linear interpolation with linear
//! extrapolation beyond the last point.

use serde::{Deserialize, Serialize};
use tce_dist::GridDim;

use crate::machine::MachineModel;

/// One measured point: a full rotation (all steps) of a local block.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RCostPoint {
    /// Local block size in bytes.
    pub bytes: f64,
    /// Measured seconds for the complete rotation.
    pub seconds: f64,
}

/// Measurements for one grid size, per rotation dimension. The paper keys
/// the table by distribution and rotation-index position; on a symmetric
/// torus the two dimensions coincide, but the file format keeps both so an
/// asymmetric machine (e.g. faster intra-node links along one dimension)
/// characterizes without format changes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridTable {
    /// Rotation steps (`√P`, the grid extent along the travel dimension).
    pub steps: u32,
    /// Points for travel along grid dimension 1, ascending in size.
    pub dim1: Vec<RCostPoint>,
    /// Points for travel along grid dimension 2, ascending in size.
    pub dim2: Vec<RCostPoint>,
}

/// A characterization file: the machine it was measured on plus one table
/// per grid size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Name of the characterized machine.
    pub machine: String,
    /// Tables, one per measured grid size.
    pub grids: Vec<GridTable>,
}

/// The ladder of block sizes measured per grid: 1 kB … 4 GB, ~4 points per
/// decade. Dense enough that piecewise-linear interpolation of the
/// (convex, nearly affine) rotation time is accurate to well under 1 %.
fn size_ladder() -> Vec<f64> {
    let mut sizes = Vec::new();
    let mut s = 1024.0;
    while s <= 4.0 * 1024.0 * 1024.0 * 1024.0 {
        sizes.push(s);
        s *= 1.7782794; // 10^(1/4)
    }
    sizes
}

/// "Measure" full-rotation times on `machine` for the given grid step
/// counts (one table per entry). In the paper this is an MPI
/// micro-benchmark run once per target cluster.
pub fn characterize(machine: &MachineModel, step_counts: &[u32]) -> Characterization {
    let grids = step_counts
        .iter()
        .map(|&q| {
            let measure = |dim: GridDim| {
                size_ladder()
                    .into_iter()
                    .map(|bytes| RCostPoint {
                        bytes,
                        seconds: q as f64
                            * match dim {
                                GridDim::Dim1 => machine.msg_time(bytes),
                                GridDim::Dim2 => machine.msg_time_dim2(bytes),
                            },
                    })
                    .collect::<Vec<_>>()
            };
            GridTable { steps: q, dim1: measure(GridDim::Dim1), dim2: measure(GridDim::Dim2) }
        })
        .collect();
    Characterization { machine: machine.name.clone(), grids }
}

fn interpolate(points: &[RCostPoint], bytes: f64) -> f64 {
    assert!(!points.is_empty(), "empty characterization table");
    if bytes <= 0.0 {
        return 0.0;
    }
    if points.len() == 1 {
        // Degenerate table: scale proportionally.
        return points[0].seconds * bytes / points[0].bytes;
    }
    // Find the surrounding segment; clamp to the outermost segments for
    // extrapolation.
    let seg = match points.iter().position(|p| p.bytes >= bytes) {
        Some(0) | None if bytes < points[0].bytes => 0,
        Some(0) => 0,
        Some(i) => i - 1,
        None => points.len() - 2,
    };
    let (a, b) = (points[seg], points[seg + 1]);
    let t = (bytes - a.bytes) / (b.bytes - a.bytes);
    (a.seconds + t * (b.seconds - a.seconds)).max(0.0)
}

impl Characterization {
    /// Predicted seconds to fully rotate a local block of `bytes` along
    /// `travel` on a grid with `steps` processors in that dimension.
    ///
    /// # Panics
    /// Panics if `steps` was not characterized — the characterization run
    /// must cover every grid the optimizer will consider.
    pub fn rcost(&self, steps: u32, travel: GridDim, bytes: f64) -> f64 {
        let table = self
            .grids
            .iter()
            .find(|g| g.steps == steps)
            .unwrap_or_else(|| panic!("grid with {steps} steps was not characterized"));
        let points = match travel {
            GridDim::Dim1 => &table.dim1,
            GridDim::Dim2 => &table.dim2,
        };
        interpolate(points, bytes)
    }

    /// Serialize to the JSON characterization-file format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("characterization serializes")
    }

    /// Load from the JSON characterization-file format.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chr() -> (MachineModel, Characterization) {
        let m = MachineModel::itanium_cluster();
        let c = characterize(&m, &[4, 8]);
        (m, c)
    }

    #[test]
    fn interpolation_matches_model_closely() {
        let (m, c) = chr();
        // Sizes off the ladder: interpolation error must stay tiny.
        for bytes in [1500.0, 3.3e5, 7.7e6, 5.9e7, 4.7e8] {
            for q in [4u32, 8] {
                let exact = q as f64 * m.msg_time(bytes);
                let est = c.rcost(q, GridDim::Dim1, bytes);
                assert!(
                    (est - exact).abs() / exact < 0.01,
                    "q={q} bytes={bytes}: est {est} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn extrapolation_is_sane() {
        let (m, c) = chr();
        // Above the ladder: linear extension of the last segment.
        let bytes = 16.0e9;
        let exact = 8.0 * m.msg_time(bytes);
        let est = c.rcost(8, GridDim::Dim2, bytes);
        assert!((est - exact).abs() / exact < 0.02);
        // Below the ladder.
        let small = c.rcost(8, GridDim::Dim1, 100.0);
        assert!(small > 0.0 && small < c.rcost(8, GridDim::Dim1, 2048.0));
        // Zero size costs nothing.
        assert_eq!(c.rcost(8, GridDim::Dim1, 0.0), 0.0);
    }

    #[test]
    fn monotone_in_size() {
        let (_, c) = chr();
        let mut prev = 0.0;
        let mut bytes = 512.0;
        while bytes < 1e10 {
            let t = c.rcost(4, GridDim::Dim1, bytes);
            assert!(t >= prev);
            prev = t;
            bytes *= 1.37;
        }
    }

    #[test]
    fn json_round_trip() {
        let (_, c) = chr();
        let json = c.to_json();
        let back = Characterization::from_json(&json).unwrap();
        assert_eq!(c.machine, back.machine);
        assert_eq!(c.grids.len(), back.grids.len());
        for (a, b) in c.grids.iter().zip(&back.grids) {
            assert_eq!(a.steps, b.steps);
            for (pa, pb) in a.dim1.iter().zip(&b.dim1).chain(a.dim2.iter().zip(&b.dim2)) {
                // JSON text round-trips floats to within an ULP.
                assert!((pa.bytes - pb.bytes).abs() <= pa.bytes * 1e-12);
                assert!((pa.seconds - pb.seconds).abs() <= pa.seconds * 1e-12);
            }
        }
        assert!(json.contains("itanium"));
    }

    #[test]
    #[should_panic(expected = "not characterized")]
    fn uncharacterized_grid_panics() {
        let (_, c) = chr();
        c.rcost(16, GridDim::Dim1, 1e6);
    }

    #[test]
    fn table1_d_rotation_via_characterization() {
        // D's Table-1 rotation (58.98 MB block, 8 steps) through the
        // characterization must land near the paper's 35.7 s.
        let (_, c) = chr();
        let t = c.rcost(8, GridDim::Dim2, 7_372_800.0 * 8.0);
        assert!((t - 35.7).abs() / 35.7 < 0.15, "got {t:.1}s");
    }
}
