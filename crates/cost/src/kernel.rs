//! Batched combine-cost kernels for the optimizer's inner loops.
//!
//! The §3.3 combine loops price every `(left-option, right-option)` pair
//! with a short sum of non-negative terms. Evaluated one pair at a time
//! the sums are latency-bound scalar chains interleaved with branchy
//! frontier bookkeeping; evaluated a *row* at a time over the option
//! slates' structure-of-arrays columns they become straight-line loops
//! over independent lanes that the compiler auto-vectorizes.
//!
//! **Bit-exactness contract.** Every kernel applies, per element, the
//! *exact* floating-point operation sequence of the scalar expression it
//! replaces (spelled out in each function's docs). Lanes are independent —
//! vectorizing across `i` never re-associates the per-element sum — so the
//! outputs are bitwise identical to the scalar loops, which keeps the
//! pinned paper tables (`golden/table*.txt`) and the serial-vs-parallel
//! equivalence contract intact. The `u128` memory adds and message maxima
//! are exactly associative, so those kernels may hoist the loop-invariant
//! part into `base` without changing any bit.

/// Contraction combine: per element,
/// `out[i] = ((((((lc + rc[i]) + lr) + rr[i]) + rot0) + rot1) + rot2)` —
/// the scalar order of
/// `lopt.comm + ropt.comm + lopt.redist + ropt.redist + rot[0] + rot[1] + rot[2]`.
pub fn combine7(lc: f64, lr: f64, rc: &[f64], rr: &[f64], rot: &[f64; 3], out: &mut Vec<f64>) {
    debug_assert_eq!(rc.len(), rr.len());
    out.clear();
    out.extend(
        rc.iter()
            .zip(rr)
            .map(|(&rci, &rri)| (((((lc + rci) + lr) + rri) + rot[0]) + rot[1]) + rot[2]),
    );
}

/// Element-wise combine: per element,
/// `out[i] = (((lc + rc[i]) + lr) + rr[i])` — the scalar order of
/// `lopt.comm + ropt.comm + lopt.redist + ropt.redist`.
pub fn combine4(lc: f64, lr: f64, rc: &[f64], rr: &[f64], out: &mut Vec<f64>) {
    debug_assert_eq!(rc.len(), rr.len());
    out.clear();
    out.extend(rc.iter().zip(rr).map(|(&rci, &rri)| ((lc + rci) + lr) + rri));
}

/// Reduction combine: per element,
/// `out[i] = ((cc[i] + cr[i]) + reduce)` — the scalar order of
/// `copt.comm + copt.redist + reduce_cost`.
pub fn combine3(cc: &[f64], cr: &[f64], reduce: f64, out: &mut Vec<f64>) {
    debug_assert_eq!(cc.len(), cr.len());
    out.clear();
    out.extend(cc.iter().zip(cr).map(|(&cci, &cri)| (cci + cri) + reduce));
}

/// Per-element `out[i] = base + xs[i]`. Unsigned addition is exactly
/// associative (all terms non-negative, the full sum fits), so the caller
/// may fold any loop-invariant memory terms into `base`.
pub fn add_u128(base: u128, xs: &[u128], out: &mut Vec<u128>) {
    out.clear();
    out.extend(xs.iter().map(|&x| base + x));
}

/// Per-element `out[i] = base.max(xs[i])`. Max is associative and
/// commutative, so the caller may fold any loop-invariant message terms
/// into `base`.
pub fn max_u128(base: u128, xs: &[u128], out: &mut Vec<u128>) {
    out.clear();
    out.extend(xs.iter().map(|&x| base.max(x)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        // Deterministic awkward values: sums in these magnitudes round, so
        // bit-equality against the scalar reference is a real check.
        let f = |i: usize, s: u64| ((i as u64 * 2654435761 + s) % 1_000_003) as f64 * 1e-4 + 0.1;
        ((0..n).map(|i| f(i, seed)).collect(), (0..n).map(|i| f(i, seed ^ 0xabcd)).collect())
    }

    #[test]
    fn combine7_matches_scalar_order_bit_for_bit() {
        let (rc, rr) = cols(37, 7);
        let (lc, lr) = (0.123456789, 0.000987654321);
        let rot = [1.5e-3, 2.25e-4, 7.75e-5];
        let mut out = Vec::new();
        combine7(lc, lr, &rc, &rr, &rot, &mut out);
        for i in 0..rc.len() {
            let scalar = lc + rc[i] + lr + rr[i] + rot[0] + rot[1] + rot[2];
            assert_eq!(out[i].to_bits(), scalar.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn combine4_matches_scalar_order_bit_for_bit() {
        let (rc, rr) = cols(41, 11);
        let (lc, lr) = (3.0e-2, 1.0e-7);
        let mut out = Vec::new();
        combine4(lc, lr, &rc, &rr, &mut out);
        for i in 0..rc.len() {
            let scalar = lc + rc[i] + lr + rr[i];
            assert_eq!(out[i].to_bits(), scalar.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn combine3_matches_scalar_order_bit_for_bit() {
        let (cc, cr) = cols(29, 13);
        let reduce = 4.25e-3;
        let mut out = Vec::new();
        combine3(&cc, &cr, reduce, &mut out);
        for i in 0..cc.len() {
            let scalar = cc[i] + cr[i] + reduce;
            assert_eq!(out[i].to_bits(), scalar.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn unsigned_kernels_match_any_association() {
        let xs: Vec<u128> = (0..23).map(|i| (i * i * 977 + 13) as u128).collect();
        let (mut mem, mut msg) = (Vec::new(), Vec::new());
        add_u128(1_000, &xs, &mut mem);
        max_u128(500, &xs, &mut msg);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(mem[i], x + 1_000);
            assert_eq!(msg[i], x.max(500));
        }
    }

    #[test]
    fn kernels_reuse_buffers_without_stale_tail() {
        let (rc, rr) = cols(16, 3);
        let mut out = Vec::new();
        combine4(1.0, 2.0, &rc, &rr, &mut out);
        assert_eq!(out.len(), 16);
        combine4(1.0, 2.0, &rc[..4], &rr[..4], &mut out);
        assert_eq!(out.len(), 4);
    }
}
