//! The consolidated cost model handed to the optimizer.
//!
//! Bundles the machine description, its `RCost` characterization for the
//! grids under consideration, and the memory limit, exposing exactly the
//! quantities the §3.3 dynamic programming needs.

use tce_dist::{Distribution, GridDim, ProcGrid, Redistribution};
use tce_expr::{IndexId, IndexSet, IndexSpace, Tensor};

use crate::machine::MachineModel;
use crate::rcost::{characterize, Characterization};
use crate::redist::maybe_redistribution_cost;
use crate::rotate;

/// Machine + characterization + grid: everything cost-related the search
/// needs for one target configuration.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// The machine description (redistribution, compute, memory limit).
    pub machine: MachineModel,
    /// The rotation-cost characterization table.
    pub chr: Characterization,
    /// The processor grid.
    pub grid: ProcGrid,
}

impl CostModel {
    /// Build a model for `procs` processors of `machine` (square grid),
    /// characterizing rotation costs on the fly.
    ///
    /// Returns `None` when `procs` is not a perfect square.
    pub fn for_square(machine: MachineModel, procs: u32) -> Option<Self> {
        let grid = ProcGrid::square(procs)?;
        let chr = characterize(&machine, &[grid.dim1, grid.dim2]);
        Some(Self { machine, chr, grid })
    }

    /// Build from a pre-measured characterization file.
    pub fn with_characterization(
        machine: MachineModel,
        chr: Characterization,
        grid: ProcGrid,
    ) -> Self {
        Self { machine, chr, grid }
    }

    /// Per-processor memory limit in words.
    pub fn mem_limit_words(&self) -> u128 {
        self.machine.mem_per_proc_words()
    }

    /// Stable 128-bit digest of everything cost-relevant in this model:
    /// the machine parameters (bit-exact), the grid shape, and the
    /// [`Characterization::digest`]. The on-disk plan cache keys entries
    /// by this value so a plan memoized for one machine profile can never
    /// be served for another.
    pub fn digest(&self) -> u128 {
        let m = &self.machine;
        let mut h = tce_expr::Fnv128::new();
        h.write_str(&m.name);
        for bits in [
            m.latency_s.to_bits(),
            m.peak_bandwidth.to_bits(),
            m.half_saturation_bytes.to_bits(),
            m.flops_per_proc.to_bits(),
            m.rendezvous_cutover_bytes.to_bits(),
            m.rendezvous_extra_latency_s.to_bits(),
            m.dim2_bandwidth_factor.to_bits(),
            m.mem_per_node_bytes,
        ] {
            h.write_u64(bits);
        }
        h.write_u32(m.procs_per_node);
        h.write_u32(self.grid.dim1);
        h.write_u32(self.grid.dim2);
        h.write_u128(self.chr.digest());
        h.finish()
    }

    /// The paper's `RotateCost` for an array fused `fused` with its parent.
    pub fn rotate_cost(
        &self,
        tensor: &Tensor,
        space: &IndexSpace,
        alpha: Distribution,
        travel: GridDim,
        fused: &IndexSet,
    ) -> f64 {
        rotate::rotate_cost(tensor, space, self.grid, alpha, travel, fused, &self.chr)
    }

    /// Generalized rotation cost under a surrounding fused-loop set (see
    /// [`rotate::rotate_cost_surrounded`]).
    #[allow(clippy::too_many_arguments)]
    pub fn rotate_cost_surrounded(
        &self,
        tensor: &Tensor,
        space: &IndexSpace,
        alpha: Distribution,
        travel: GridDim,
        surrounding: &IndexSet,
        trip: impl Fn(IndexId) -> u64,
    ) -> f64 {
        rotate::rotate_cost_surrounded(
            tensor,
            space,
            self.grid,
            alpha,
            travel,
            surrounding,
            trip,
            &self.chr,
        )
    }

    /// Redistribution cost (zero when the layouts already agree).
    pub fn redistribution_cost(
        &self,
        tensor: &Tensor,
        space: &IndexSpace,
        from: Distribution,
        to: Distribution,
        fused: &IndexSet,
    ) -> f64 {
        maybe_redistribution_cost(tensor, space, self.grid, from, to, fused, &self.machine)
    }

    /// Describe a redistribution (for plan reporting).
    pub fn redistribution(&self, from: Distribution, to: Distribution) -> Option<Redistribution> {
        Redistribution::needed(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_square_builds_and_characterizes() {
        let cm = CostModel::for_square(MachineModel::itanium_cluster(), 16).unwrap();
        assert_eq!(cm.grid.num_procs(), 16);
        // The characterization covers the grid's step counts.
        assert!(cm.chr.rcost(4, GridDim::Dim1, 1e6) > 0.0);
        assert!(CostModel::for_square(MachineModel::itanium_cluster(), 12).is_none());
    }

    #[test]
    fn mem_limit_matches_paper() {
        let cm = CostModel::for_square(MachineModel::itanium_cluster(), 64).unwrap();
        // 4 GB/node ÷ 2 procs ÷ 8 B = 256 Mi-ish words in paper units.
        assert_eq!(cm.mem_limit_words(), (2.0 * 1024.0 * 1_024_000.0) as u128 / 8);
    }
}

#[cfg(test)]
mod wrapper_tests {
    use super::*;
    use tce_expr::Tensor;

    #[test]
    fn cost_model_wrappers_match_free_functions() {
        let cm = CostModel::for_square(MachineModel::itanium_cluster(), 16).unwrap();
        let mut sp = IndexSpace::new();
        let b = sp.declare("b", 480);
        let f = sp.declare("f", 64);
        let t = Tensor::new("X", vec![b, f]);
        let alpha = Distribution::pair(b, f);
        let fused = IndexSet::new();
        let a = cm.rotate_cost(&t, &sp, alpha, GridDim::Dim1, &fused);
        let b2 =
            crate::rotate::rotate_cost(&t, &sp, cm.grid, alpha, GridDim::Dim1, &fused, &cm.chr);
        assert_eq!(a, b2);
        // Redistribution is symmetric in moved fraction for full pairs.
        let to = Distribution::pair(f, b);
        let fwd = cm.redistribution_cost(&t, &sp, alpha, to, &fused);
        let back = cm.redistribution_cost(&t, &sp, to, alpha, &fused);
        assert!((fwd - back).abs() < 1e-12);
        assert!(cm.redistribution(alpha, to).is_some());
        assert!(cm.redistribution(alpha, alpha).is_none());
    }
}
