//! Redistribution cost between contraction steps.
//!
//! The paper characterizes redistribution empirically alongside rotation;
//! our stand-in model charges a block-cyclic exchange: for each grid
//! dimension whose distributed index changes, every processor exchanges
//! with the `ext(d)` processors along that dimension; the moved volume is
//! [`tce_dist::Redistribution::moved_fraction`] of the local block and the
//! per-peer message size sets the effective bandwidth.

use tce_dist::{dist_size, Distribution, GridDim, ProcGrid, Redistribution};
use tce_expr::{IndexSet, IndexSpace, Tensor};

use crate::machine::MachineModel;
use crate::units::WORD_BYTES;

/// Number of peers a processor exchanges with under redistribution `r`.
pub fn peer_count(r: Redistribution, grid: ProcGrid) -> u32 {
    let mut peers = 1;
    for d in GridDim::BOTH {
        if r.from.at(d) != r.to.at(d) {
            peers *= grid.extent(d);
        }
    }
    peers.max(1)
}

/// Seconds to redistribute `tensor` (with fused dimensions `fused` already
/// removed) from `r.from` to `r.to` on `grid`.
pub fn redistribution_cost(
    tensor: &Tensor,
    space: &IndexSpace,
    grid: ProcGrid,
    r: Redistribution,
    fused: &IndexSet,
    machine: &MachineModel,
) -> f64 {
    let local_words = dist_size(tensor, space, grid, r.from, fused);
    let moved_bytes = r.moved_fraction(grid) * (local_words * WORD_BYTES) as f64;
    if moved_bytes <= 0.0 {
        return 0.0;
    }
    let peers = peer_count(r, grid) as f64;
    let msg_bytes = moved_bytes / peers;
    peers * machine.latency_s + moved_bytes / machine.eff_bandwidth(msg_bytes)
}

/// Convenience: zero when `from == to`, the modeled cost otherwise.
pub fn maybe_redistribution_cost(
    tensor: &Tensor,
    space: &IndexSpace,
    grid: ProcGrid,
    from: Distribution,
    to: Distribution,
    fused: &IndexSet,
    machine: &MachineModel,
) -> f64 {
    match Redistribution::needed(from, to) {
        None => 0.0,
        Some(r) => redistribution_cost(tensor, space, grid, r, fused, machine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (IndexSpace, ProcGrid, MachineModel) {
        let mut sp = IndexSpace::new();
        sp.declare("b", 480);
        sp.declare("e", 64);
        sp.declare("f", 64);
        sp.declare("l", 32);
        (sp, ProcGrid::square(16).unwrap(), MachineModel::itanium_cluster())
    }

    #[test]
    fn identity_redistribution_is_free() {
        let (sp, g, m) = setup();
        let b = sp.lookup("b").unwrap();
        let f = sp.lookup("f").unwrap();
        let t = Tensor::new("B", vec![b, sp.lookup("e").unwrap(), f, sp.lookup("l").unwrap()]);
        let d = Distribution::pair(b, f);
        assert_eq!(maybe_redistribution_cost(&t, &sp, g, d, d, &IndexSet::new(), &m), 0.0);
    }

    #[test]
    fn one_dim_change_cheaper_than_two() {
        let (sp, g, m) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let t = Tensor::new("B", vec![ix("b"), ix("e"), ix("f"), ix("l")]);
        let from = Distribution::pair(ix("b"), ix("f"));
        let one = maybe_redistribution_cost(
            &t,
            &sp,
            g,
            from,
            Distribution::pair(ix("b"), ix("e")),
            &IndexSet::new(),
            &m,
        );
        let two = maybe_redistribution_cost(
            &t,
            &sp,
            g,
            from,
            Distribution::pair(ix("e"), ix("b")),
            &IndexSet::new(),
            &m,
        );
        assert!(one > 0.0);
        assert!(two > one);
    }

    #[test]
    fn cost_scales_with_block_size() {
        let (sp, g, m) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let big = Tensor::new("B", vec![ix("b"), ix("e"), ix("f"), ix("l")]);
        let small = Tensor::new("X", vec![ix("e"), ix("f"), ix("l")]);
        let from_b = Distribution::pair(ix("b"), ix("f"));
        let to_b = Distribution::pair(ix("b"), ix("e"));
        let from_s = Distribution::pair(ix("e"), ix("f"));
        let to_s = Distribution::pair(ix("e"), ix("l"));
        let cb = maybe_redistribution_cost(&big, &sp, g, from_b, to_b, &IndexSet::new(), &m);
        let cs = maybe_redistribution_cost(&small, &sp, g, from_s, to_s, &IndexSet::new(), &m);
        assert!(cb > cs);
    }

    #[test]
    fn fused_dims_shrink_the_cost() {
        let (sp, g, m) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let t = Tensor::new("B", vec![ix("b"), ix("e"), ix("f"), ix("l")]);
        let from = Distribution::pair(ix("b"), ix("e"));
        let to = Distribution::pair(ix("b"), ix("l"));
        let full = maybe_redistribution_cost(&t, &sp, g, from, to, &IndexSet::new(), &m);
        let fused = IndexSet::from_iter([ix("f")]);
        let less = maybe_redistribution_cost(&t, &sp, g, from, to, &fused, &m);
        assert!(less < full);
    }

    #[test]
    fn peer_counts() {
        let (sp, g, _) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let from = Distribution::pair(ix("b"), ix("f"));
        let r1 = Redistribution::needed(from, Distribution::pair(ix("b"), ix("e"))).unwrap();
        assert_eq!(peer_count(r1, g), 4);
        let r2 = Redistribution::needed(from, Distribution::pair(ix("e"), ix("l"))).unwrap();
        assert_eq!(peer_count(r2, g), 16);
    }
}
