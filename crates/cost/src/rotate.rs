//! Rotation communication cost: the paper's `LoopRange`, `MsgFactor`, and
//! `RotateCost` (§3.3), plus the generalization used when the loops
//! surrounding a contraction exceed the rotated array's own fusion.

use tce_dist::{dist_size, Distribution, GridDim, ProcGrid};
use tce_expr::{IndexId, IndexSet, IndexSpace, Tensor};

use crate::rcost::Characterization;
use crate::units::WORD_BYTES;

/// The paper's `LoopRange(j, v, α, f)`: the factor the fused loop `j`
/// contributes to the message count — `1` if not fused, `N_j/√P` if fused
/// and distributed, `N_j` if fused and undistributed.
pub fn loop_range(
    j: IndexId,
    space: &IndexSpace,
    grid: ProcGrid,
    alpha: Distribution,
    fused: &IndexSet,
) -> u64 {
    if !fused.contains(j) {
        1
    } else if let Some(d) = alpha.position_of(j) {
        tce_dist::block_len(space.extent(j), grid.extent(d))
    } else {
        space.extent(j)
    }
}

/// The paper's `MsgFactor(v, α, f)`: how many times the (sliced) block of
/// `v` is communicated — the product of `LoopRange` over `v`'s dimensions.
pub fn msg_factor(
    tensor: &Tensor,
    space: &IndexSpace,
    grid: ProcGrid,
    alpha: Distribution,
    fused: &IndexSet,
) -> u128 {
    tensor.dims.iter().map(|&j| loop_range(j, space, grid, alpha, fused) as u128).product()
}

/// The paper's `RotateCost(v, α, i, f)`: `MsgFactor × RCost(DistSize, α, i)`
/// — the communication cost of rotating array `v` (fused `f` with its
/// parent, distributed `α`) along the rotation index, whose grid dimension
/// is `travel`.
pub fn rotate_cost(
    tensor: &Tensor,
    space: &IndexSpace,
    grid: ProcGrid,
    alpha: Distribution,
    travel: GridDim,
    fused: &IndexSet,
    chr: &Characterization,
) -> f64 {
    let words = dist_size(tensor, space, grid, alpha, fused);
    let factor = msg_factor(tensor, space, grid, alpha, fused) as f64;
    let steps = grid.extent(travel);
    factor * chr.rcost(steps, travel, (words * WORD_BYTES) as f64)
}

/// Generalized rotation cost when the contraction sits inside fused loops
/// `surrounding` that may include indices *not* among `v`'s dimensions
/// (fused via another edge of the same node). Loops over `v`'s own
/// dimensions slice the message exactly as in the paper; loops the array
/// does not carry force a full re-rotation per iteration. `trip(j)` must
/// give the per-processor trip count of surrounding loop `j` (reduced when
/// `j` is distributed — by legality, consistently across the node).
///
/// When `surrounding ⊆ v.dims` this coincides with [`rotate_cost`] with
/// `f = surrounding`.
#[allow(clippy::too_many_arguments)]
pub fn rotate_cost_surrounded(
    tensor: &Tensor,
    space: &IndexSpace,
    grid: ProcGrid,
    alpha: Distribution,
    travel: GridDim,
    surrounding: &IndexSet,
    trip: impl Fn(IndexId) -> u64,
    chr: &Characterization,
) -> f64 {
    let dims = tensor.dim_set();
    let sliced: IndexSet = surrounding.intersection(&dims);
    let words = dist_size(tensor, space, grid, alpha, &sliced);
    let factor: u128 = surrounding.iter().map(|j| trip(j) as u128).product();
    let steps = grid.extent(travel);
    factor as f64 * chr.rcost(steps, travel, (words * WORD_BYTES) as f64)
}

/// Per-step message size in words for a rotated array (the send/receive
/// buffer the paper adds to the memory requirement).
pub fn message_words(
    tensor: &Tensor,
    space: &IndexSpace,
    grid: ProcGrid,
    alpha: Distribution,
    surrounding: &IndexSet,
) -> u128 {
    let sliced: IndexSet = surrounding.intersection(&tensor.dim_set());
    dist_size(tensor, space, grid, alpha, &sliced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use crate::rcost::characterize;

    fn setup() -> (IndexSpace, ProcGrid, Characterization) {
        let mut sp = IndexSpace::new();
        for n in ["a", "b", "c", "d"] {
            sp.declare(n, 480);
        }
        for n in ["e", "f"] {
            sp.declare(n, 64);
        }
        for n in ["i", "j", "k", "l"] {
            sp.declare(n, 32);
        }
        let chr = characterize(&MachineModel::itanium_cluster(), &[4, 8]);
        (sp, ProcGrid::square(16).unwrap(), chr)
    }

    #[test]
    fn loop_range_three_cases() {
        let (sp, g, _) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let alpha = Distribution::pair(ix("d"), ix("b"));
        let fused = IndexSet::from_iter([ix("b"), ix("f")]);
        // Not fused → 1.
        assert_eq!(loop_range(ix("d"), &sp, g, alpha, &fused), 1);
        // Fused and distributed → N/√P.
        assert_eq!(loop_range(ix("b"), &sp, g, alpha, &fused), 120);
        // Fused, undistributed → N.
        assert_eq!(loop_range(ix("f"), &sp, g, alpha, &fused), 64);
    }

    #[test]
    fn msg_factor_is_product_over_fused_dims() {
        let (sp, g, _) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let t1 = Tensor::new("T1", vec![ix("b"), ix("c"), ix("d"), ix("f")]);
        let alpha = Distribution::pair(ix("d"), ix("b"));
        // Table 2: T1 fused {f} with its parent → 64 messages per step
        // sequence.
        assert_eq!(msg_factor(&t1, &sp, g, alpha, &IndexSet::from_iter([ix("f")])), 64);
        assert_eq!(msg_factor(&t1, &sp, g, alpha, &IndexSet::new()), 1);
    }

    #[test]
    fn table2_t1_rotate_cost_near_paper() {
        let (sp, g, chr) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let t1 = Tensor::new("T1", vec![ix("b"), ix("c"), ix("d"), ix("f")]);
        let alpha = Distribution::pair(ix("d"), ix("b"));
        let fused = IndexSet::from_iter([ix("f")]);
        let t = rotate_cost(&t1, &sp, g, alpha, GridDim::Dim2, &fused, &chr);
        // Paper: 902.0 s (init) / 888.5 s (final); model ≈ 1030 s.
        assert!((t - 902.0).abs() / 902.0 < 0.16, "got {t:.0}s");
    }

    #[test]
    fn table2_b_rotate_cost_near_paper() {
        let (sp, g, chr) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let b = Tensor::new("B", vec![ix("b"), ix("e"), ix("f"), ix("l")]);
        // Conformant placement: b (rotation index) on dim1, e on dim2.
        let alpha = Distribution::pair(ix("b"), ix("e"));
        let fused = IndexSet::from_iter([ix("f")]);
        let t = rotate_cost(&b, &sp, g, alpha, GridDim::Dim1, &fused, &chr);
        assert!((t - 25.7).abs() / 25.7 < 0.15, "got {t:.1}s");
    }

    #[test]
    fn surrounded_matches_paper_form_when_subset() {
        let (sp, g, chr) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let t1 = Tensor::new("T1", vec![ix("b"), ix("c"), ix("d"), ix("f")]);
        let alpha = Distribution::pair(ix("d"), ix("b"));
        let fused = IndexSet::from_iter([ix("f")]);
        let a = rotate_cost(&t1, &sp, g, alpha, GridDim::Dim2, &fused, &chr);
        let b = rotate_cost_surrounded(
            &t1,
            &sp,
            g,
            alpha,
            GridDim::Dim2,
            &fused,
            |j| loop_range(j, &sp, g, alpha, &fused),
            &chr,
        );
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn surrounding_loop_not_in_dims_rerotates_full_block() {
        // D(c,d,e,l) rotated inside a fused f loop (f ∉ D.dims): the full
        // block moves N_f times — the cost the optimizer avoids by keeping
        // D fixed in Table 2.
        let (sp, g, chr) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let dd = Tensor::new("D", vec![ix("c"), ix("d"), ix("e"), ix("l")]);
        let alpha = Distribution::pair(ix("d"), ix("e"));
        let f_loop = IndexSet::from_iter([ix("f")]);
        let once = rotate_cost(&dd, &sp, g, alpha, GridDim::Dim2, &IndexSet::new(), &chr);
        let inside =
            rotate_cost_surrounded(&dd, &sp, g, alpha, GridDim::Dim2, &f_loop, |_| 64, &chr);
        assert!((inside - 64.0 * once).abs() / inside < 1e-9);
    }

    #[test]
    fn message_words_slices_by_fused_dims_only() {
        let (sp, g, _) = setup();
        let ix = |s: &str| sp.lookup(s).unwrap();
        let dd = Tensor::new("D", vec![ix("c"), ix("d"), ix("e"), ix("l")]);
        let alpha = Distribution::pair(ix("d"), ix("e"));
        let f_loop = IndexSet::from_iter([ix("f")]); // not a dim of D
        assert_eq!(message_words(&dd, &sp, g, alpha, &f_loop), 480 * 120 * 16 * 32);
        let d_loop = IndexSet::from_iter([ix("d")]);
        assert_eq!(message_words(&dd, &sp, g, alpha, &d_loop), 480 * 16 * 32);
    }
}
