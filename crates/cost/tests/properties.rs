//! Property tests of the cost models.

use proptest::prelude::*;
use tce_cost::{characterize, MachineModel};
use tce_dist::GridDim;

proptest! {
    /// Characterization interpolation stays within 5 % of the underlying
    /// model across the ladder's span, for both link speeds. (The slack is
    /// dominated by the eager/rendezvous protocol knee, which a
    /// piecewise-linear table necessarily smooths; away from the knee the
    /// model is near-affine and the table is near-exact.)
    #[test]
    fn interpolation_tracks_model(bytes in 2048.0f64..3.0e9, q in 2u32..16) {
        let m = MachineModel::itanium_asymmetric(2.5);
        let chr = characterize(&m, &[q]);
        for (dim, exact) in [
            (GridDim::Dim1, q as f64 * m.msg_time(bytes)),
            (GridDim::Dim2, q as f64 * m.msg_time_dim2(bytes)),
        ] {
            let est = chr.rcost(q, dim, bytes);
            prop_assert!((est - exact).abs() / exact < 0.05,
                "dim {dim:?}: est {est} vs exact {exact}");
        }
    }

    /// Message time is monotone in size and superadditive-ish: sending one
    /// big message never costs more than two halves (latency amortizes).
    #[test]
    fn msg_time_monotone_and_batching_pays(a in 1.0e3f64..1.0e8, b in 1.0e3f64..1.0e8) {
        let m = MachineModel::itanium_cluster();
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(m.msg_time(lo) <= m.msg_time(hi));
        prop_assert!(m.msg_time(a + b) <= m.msg_time(a) + m.msg_time(b) + 1e-12);
    }

    /// Effective bandwidth never exceeds the peak and approaches it.
    #[test]
    fn eff_bandwidth_bounded(bytes in 1.0f64..1.0e12) {
        let m = MachineModel::itanium_cluster();
        let bw = m.eff_bandwidth(bytes);
        prop_assert!(bw > 0.0 && bw < m.peak_bandwidth);
    }
}
