//! Offline stand-in for `proptest`.
//!
//! Provides the `proptest!` macro and the strategy subset this workspace
//! uses — integer/float ranges, `bool::ANY`, and `collection::vec` — over
//! plain randomized sampling. There is **no shrinking**: a failing case
//! reports its sampled inputs (via the generated panic message) but is not
//! minimized. Each test runs a fixed number of cases with a deterministic
//! per-test seed, so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Cases run per property (overridable with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

/// Per-block configuration, set with `#![proptest_config(...)]` inside a
/// `proptest!` invocation. Only the case count is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled executions per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` executions per property (an explicit count
    /// wins over the `PROPTEST_CASES` environment default).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: cases() }
    }
}

/// The sampling source handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner for one named test.
    pub fn new(test_name: &str) -> Self {
        // FNV-1a over the test name: stable, collision-safe enough for a
        // per-test stream selector.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner { rng: StdRng::seed_from_u64(h) }
    }

    /// 64 fresh bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Borrow the generator for `rand`-style sampling.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value;
    /// Draw one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// `proptest::bool` — boolean strategies.
pub mod bool {
    use super::{Strategy, TestRunner};

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// An inclusive-low, exclusive-high element-count range, converted from
    /// the forms `collection::vec` accepts as its length argument.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = runner.rng().gen_range(self.len.lo..self.len.hi);
            (0..n).map(|_| self.elem.sample(runner)).collect()
        }
    }
}

/// Minimal regex-shaped string strategy: `&str` patterns of the form
/// `[class]{m,n}` (one character class, repeated a sampled count) sample
/// random strings over the class. This covers the workspace's use of
/// proptest string strategies; other regex syntax is rejected at runtime
/// with a clear panic rather than silently mis-sampling.
mod string_pattern {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Expand `[...]` class body into its member characters.
    fn class_chars(body: &str) -> Vec<char> {
        let mut out = Vec::new();
        let mut it = body.chars().peekable();
        while let Some(c) = it.next() {
            let lo = if c == '\\' {
                unescape(it.next().expect("dangling escape in character class"))
            } else {
                c
            };
            // `a-z` range (a `-` not followed by a range end is literal).
            if it.peek() == Some(&'-') {
                let mut ahead = it.clone();
                ahead.next();
                if let Some(&hi) = ahead.peek() {
                    if hi != ']' {
                        it = ahead;
                        it.next();
                        let hi = if hi == '\\' {
                            unescape(it.next().expect("dangling escape in character class"))
                        } else {
                            hi
                        };
                        for v in lo as u32..=hi as u32 {
                            out.push(char::from_u32(v).expect("invalid char range"));
                        }
                        continue;
                    }
                }
            }
            out.push(lo);
        }
        out
    }

    impl Strategy for &str {
        type Value = String;
        fn sample(&self, runner: &mut TestRunner) -> String {
            let pat = *self;
            // Find the first unescaped `]` closing the class.
            let (body, rest) = pat
                .strip_prefix('[')
                .and_then(|r| {
                    let bytes = r.as_bytes();
                    let mut i = 0;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b']' => return Some((&r[..i], &r[i + 1..])),
                            _ => i += 1,
                        }
                    }
                    None
                })
                .unwrap_or_else(|| {
                    panic!("unsupported string pattern `{pat}` (expected `[class]{{m,n}}`)")
                });
            let counts =
                rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')).unwrap_or_else(|| {
                    panic!("unsupported string pattern `{pat}` (expected `[class]{{m,n}}`)")
                });
            let (m, n) = counts
                .split_once(',')
                .map(|(a, b)| (a.trim().parse().unwrap(), b.trim().parse().unwrap()))
                .unwrap_or_else(|| {
                    let k = counts.trim().parse().expect("bad repeat count");
                    (k, k)
                });
            let chars = class_chars(body);
            assert!(!chars.is_empty(), "empty character class in `{pat}`");
            let len = runner.rng().gen_range(m..=n);
            (0..len).map(|_| chars[runner.rng().gen_range(0..chars.len())]).collect()
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRunner,
    };
}

/// Boolean property assertion (plain `assert!` semantics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running [`cases`] sampled executions. On a panic,
/// the failing case's sampled arguments are printed for reproduction.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut runner);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(cause) = result {
                    eprintln!(
                        concat!(
                            "proptest case {} of ", stringify!($name), " failed with inputs:",
                            $("\n  ", stringify!($arg), " = {:?}",)+
                        ),
                        case, $(&$arg),+
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
    )*};
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..$crate::cases() {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut runner);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(cause) = result {
                    eprintln!(
                        concat!(
                            "proptest case {} of ", stringify!($name), " failed with inputs:",
                            $("\n  ", stringify!($arg), " = {:?}",)+
                        ),
                        case, $(&$arg),+
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..4, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(xs in crate::collection::vec(0usize..5, 0..8)) {
            prop_assert!(xs.len() < 8);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn bool_any_compiles(b in crate::bool::ANY) {
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRunner::new("t");
        let mut b = TestRunner::new("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRunner::new("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
