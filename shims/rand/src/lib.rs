//! Offline stand-in for the `rand` 0.8 API subset this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over half-open and inclusive
//! integer/float ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — statistically solid for test-data and
//! workload generation, deterministic for a given seed, and dependency
//! free. Streams differ from the real `StdRng` (ChaCha12), which only
//! matters to tests asserting exact sampled values; none do.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministic generator for `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// `u64` in `[0, bound)` without modulo bias (Lemire's method).
fn bounded(rng: &mut impl RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

/// `f64` uniform in `[0, 1)` from the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        (*self.start()..*self.end() + f64::EPSILON * self.end().abs().max(1.0)).sample(rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2u64..=9);
            assert!((2..=9).contains(&y));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let n = rng.gen_range(0usize..5);
            assert!(n < 5);
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
