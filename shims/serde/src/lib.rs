//! Offline stand-in for the `serde` facade.
//!
//! The build environment vendors no external crates, so this workspace
//! ships a minimal value-tree serialization framework under the familiar
//! `serde`/`serde_json` names. It covers exactly the shapes the workspace
//! derives: named-field structs (with `#[serde(skip)]`), newtype/tuple
//! structs, and unit-variant enums — serialized with the same JSON layout
//! real serde would produce, so plan and characterization artifacts stay
//! format-compatible.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization failure: what was expected and what was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// A "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind_name()))
    }
}

/// Fetch and deserialize one named field of an object (derive support).
pub fn de_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    match v {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == key) {
            Some((_, fv)) => {
                T::from_value(fv).map_err(|e| DeError(format!("field `{key}`: {}", e.0)))
            }
            None => Err(DeError(format!("missing field `{key}`"))),
        },
        other => Err(DeError::expected("object", other)),
    }
}

/// Deserialize the `i`-th element of a tuple struct's array form, also
/// accepting the bare value for single-field newtypes (derive support).
pub fn de_element<T: Deserialize>(v: &Value, i: usize, arity: usize) -> Result<T, DeError> {
    if arity == 1 {
        return T::from_value(v);
    }
    match v {
        Value::Array(items) if items.len() == arity => T::from_value(&items[i]),
        Value::Array(items) => {
            Err(DeError(format!("expected {arity}-element array, found {} elements", items.len())))
        }
        other => Err(DeError::expected("array", other)),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(u128::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_u128()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, u128);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(i128::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_i128()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, i128);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::UInt(*self as u128))
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v)
            .and_then(|u| usize::try_from(u).map_err(|_| DeError::expected("usize", v)))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
