//! The JSON value model shared by the `serde` and `serde_json` shims.

/// A JSON number. Integral values keep their full `u128`/`i128` precision
/// (message volumes and word counts in this workspace exceed `f64`'s exact
/// integer range).
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    UInt(u128),
    /// A negative integer.
    Int(i128),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// As `u128`, when integral and in range.
    pub fn as_u128(&self) -> Option<u128> {
        match *self {
            Number::UInt(u) => Some(u),
            Number::Int(i) => u128::try_from(i).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= 2f64.powi(127) => {
                Some(f as u128)
            }
            Number::Float(_) => None,
        }
    }

    /// As `i128`, when integral and in range.
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Number::UInt(u) => i128::try_from(u).ok(),
            Number::Int(i) => Some(i),
            Number::Float(f) if f.fract() == 0.0 && f.abs() <= 2f64.powi(126) => Some(f as i128),
            Number::Float(_) => None,
        }
    }

    /// As `f64` (integers convert with possible precision loss).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::UInt(u) => u as f64,
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_u128(), other.as_u128()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // One side integral-in-range, the other not: compare as
                // floats (covers negative vs positive and float vs int).
            }
        }
        match (self.as_i128(), other.as_i128()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {}
        }
        self.as_f64() == other.as_f64()
    }
}

/// A parsed or constructed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a key of an object; panics on non-objects.
    pub fn insert(&mut self, key: &str, value: Value) {
        let Value::Object(fields) = self else { panic!("insert on non-object JSON value") };
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_owned(), value)),
        }
    }

    /// The string contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u128().and_then(|u| u64::try_from(u).ok()),
            _ => None,
        }
    }

    /// The numeric value as `u128`, if an integral number in range.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Number(n) => n.as_u128(),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Escape and quote a string per JSON.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a number as a JSON literal. Non-finite floats (which JSON cannot
/// represent) render as `null`, matching serde_json's lossy behavior only
/// in spirit — this workspace never serializes them.
pub fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::UInt(u) => out.push_str(&u.to_string()),
        Number::Int(i) => out.push_str(&i.to_string()),
        Number::Float(f) if f.is_finite() => {
            // `{:?}` is Rust's shortest round-trip float form; it always
            // contains a `.` or an exponent, so the value re-parses as a
            // float rather than collapsing into an integer.
            out.push_str(&format!("{f:?}"));
        }
        Number::Float(_) => out.push_str("null"),
    }
}
