//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input with the bare `proc_macro` API (no `syn`, which
//! the offline build cannot fetch) and generates `Serialize`/`Deserialize`
//! impls for the three item shapes the workspace uses:
//!
//! * named-field structs (honoring `#[serde(skip)]`),
//! * tuple structs (single-field newtypes serialize transparently, wider
//!   ones as arrays),
//! * enums with unit variants only (serialized as the variant name).
//!
//! Anything else — generics, data-carrying variants, other `#[serde]`
//! options — is rejected with a compile-time panic so a future change
//! fails loudly instead of serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Body {
    /// Named-field struct.
    Named(Vec<Field>),
    /// Tuple struct with `arity` fields.
    Tuple(usize),
    /// Enum of unit variants.
    Unit(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

/// True when the attribute group (the `[...]` contents) is `serde(skip)`.
/// Panics on any other `serde(...)` option.
fn serde_skip_attr(inner: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = inner.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    let Some(TokenTree::Group(g)) = tokens.get(1) else {
        panic!("unsupported bare #[serde] attribute")
    };
    let args: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
    if args == ["skip"] {
        return true;
    }
    panic!("unsupported #[serde({})] option in offline serde_derive", args.join(""));
}

/// Consume attributes at the cursor, returning whether any was
/// `#[serde(skip)]`.
fn eat_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else { panic!("malformed attribute") };
        assert_eq!(g.delimiter(), Delimiter::Bracket, "malformed attribute");
        skip |= serde_skip_attr(g.stream());
        *pos += 2;
    }
    skip
}

/// Consume a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn eat_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Skip one field type: everything up to a top-level `,` (or the end),
/// tracking `<...>` nesting so `HashMap<String, IndexId>` stays one type.
fn eat_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = eat_attrs(&tokens, &mut pos);
        eat_vis(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            panic!("expected field name, found {:?}", tokens.get(pos).map(|t| t.to_string()))
        };
        let name = name.to_string();
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        eat_type(&tokens, &mut pos);
        pos += 1; // the separating comma (or one past the end)
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = eat_attrs(&tokens, &mut pos);
        assert!(!skip, "#[serde(skip)] on tuple fields is not supported");
        eat_vis(&tokens, &mut pos);
        eat_type(&tokens, &mut pos);
        pos += 1;
        arity += 1;
    }
    arity
}

fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        eat_attrs(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else { panic!("expected variant name") };
        variants.push(name.to_string());
        pos += 1;
        match tokens.get(pos) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(other) => panic!(
                "only unit enum variants are supported by the offline serde_derive \
                 (found `{other}` after variant `{}`)",
                variants.last().unwrap()
            ),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    eat_attrs(&tokens, &mut pos);
    eat_vis(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(pos) else { panic!("expected item name") };
    let name = name.to_string();
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("generic items are not supported by the offline serde_derive");
        }
    }
    let body = match (kind.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::Tuple(parse_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Unit(parse_unit_variants(g.stream()))
        }
        (k, other) => panic!("unsupported {k} body: {other:?}"),
    };
    Item { name, body }
}

/// Derive `Serialize` (see crate docs for the supported shapes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}::serde::Value::Object(fields)"
            )
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(arity) => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Unit(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String(\"{v}\".to_string())"))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive `Deserialize` (see crate docs for the supported shapes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: Default::default()", f.name)
                    } else {
                        format!("{0}: ::serde::de_field(v, \"{0}\")?", f.name)
                    }
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Body::Tuple(arity) => {
            let elems: Vec<String> =
                (0..*arity).map(|i| format!("::serde::de_element(v, {i}, {arity})?")).collect();
            format!("Ok({name}({}))", elems.join(", "))
        }
        Body::Unit(variants) => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("\"{v}\" => Ok({name}::{v})")).collect();
            format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {},\n\
                         other => Err(::serde::DeError(format!(\n\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     other => Err(::serde::DeError::expected(\"string\", other)),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
