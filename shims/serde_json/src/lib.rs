//! Offline stand-in for `serde_json`: a strict recursive-descent JSON
//! parser plus compact and pretty writers over the shim [`serde`] value
//! model. Output layout matches real serde_json (2-space indent, `": "`
//! separators) so golden artifacts stay stable if the real crate ever
//! returns.

pub use serde::value::{Number, Value};
use serde::{Deserialize, Serialize};

/// Parse or deserialization failure, with a byte offset when parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Self {
        Error { msg: msg.into(), offset: Some(offset) }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error { msg: e.0, offset: None }
    }
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Serialize compactly (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serialize with 2-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        if let Some(n) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', n * d));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => serde::value::write_number(out, n),
        Value::String(s) => serde::value::write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                serde::value::write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, fv, indent, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::parse("trailing characters after JSON value", pos));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::parse(format!("expected `{lit}`"), *pos))
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::parse("unexpected end of input", *pos)),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::parse("expected `,` or `]`", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_at(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::parse("expected `,` or `}`", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::parse("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::parse("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error::parse("bad \\u escape", *pos))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::parse("bad \\u escape", *pos))?;
                        // Surrogate pairs are not needed by this
                        // workspace's artifacts; reject them explicitly.
                        let c = char::from_u32(cp)
                            .ok_or_else(|| Error::parse("unsupported \\u escape", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(Error::parse("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (the input is a &str, so the
                // bytes are valid UTF-8 by construction).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::parse("invalid UTF-8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::parse("invalid number", start))?;
    if text.is_empty() || text == "-" {
        return Err(Error::parse("expected a JSON value", start));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(i) = stripped.parse::<i128>() {
                return Ok(Value::Number(Number::Int(-i)));
            }
        } else if let Ok(u) = text.parse::<u128>() {
            return Ok(Value::Number(Number::UInt(u)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::Float(f)))
        .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for src in ["null", "true", "false", "0", "-7", "3.5", "\"hi\\n\"", "[]", "{}"] {
            let v = parse_value(src).unwrap();
            let back = parse_value(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{src}");
        }
    }

    #[test]
    fn u128_precision_survives() {
        let big = u128::MAX - 5;
        let text = to_string(&big).unwrap();
        let back: u128 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{\"a\":1,}").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn pretty_matches_serde_json_layout() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::UInt(1))),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn floats_keep_a_float_shape() {
        let text = to_string(&1.0f64).unwrap();
        assert_eq!(text, "1.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 1.0);
    }
}
