//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box` — over a simple wall-clock harness: per sample, the closure
//! runs in a timed batch; the reported numbers are the min / mean / max of
//! the per-iteration time across samples. No statistics beyond that, no
//! HTML reports, no baseline comparison — but relative numbers (e.g. the
//! null-sink overhead gate in `benches/optimizer.rs`) are measurable.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30, measurement_time: Duration::from_millis(600) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, self.measurement_time, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (criterion's knob; the shim honors it).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target measuring time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark of this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Run one parameterized benchmark of this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, |b| f(b, input));
        self
    }

    /// End the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter (the group name provides the function part).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, measurement_time: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: how many iterations fit one sample's time slice?
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let slice = measurement_time / sample_size as u32;
    let iters = (slice.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{label:<40} [{} {} {}]  ({sample_size} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Bundle benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.measurement_time(Duration::from_millis(20));
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| b.iter(|| black_box(x) * 3));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("table", 16).to_string(), "table/16");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
